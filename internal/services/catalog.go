// Package services models the popular services the paper's ITM component 2
// targets: who owns them, where they are deployed (on-net PoPs and off-net
// caches inside eyeball networks), how they redirect users to servers
// (DNS-based with or without ECS, anycast, custom URLs), their TLS
// certificates, and their popularity ranks. One hypergiant is designated the
// reference CDN, playing the role Microsoft's CDN logs play in the paper:
// ground truth to validate client-discovery techniques against.
package services

import (
	"fmt"
	"sort"

	"itmap/internal/geo"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

// ServiceID identifies a service in the catalog.
type ServiceID int

// RedirectionKind is how a service maps users to serving sites (§3.2).
type RedirectionKind uint8

// Redirection mechanisms.
const (
	// DNSUnicast: the authoritative DNS returns a nearby unicast server
	// (nearest to the ECS prefix if supported, else to the resolver).
	DNSUnicast RedirectionKind = iota
	// Anycast: one prefix announced from many sites; BGP picks the site.
	Anycast
	// CustomURL: DNS bootstraps to any site; bulk bytes then flow from a
	// per-client custom URL pointing at the optimal site (typical for
	// video-on-demand; see §3.2.3).
	CustomURL
)

// String names the redirection kind.
func (k RedirectionKind) String() string {
	switch k {
	case DNSUnicast:
		return "dns-unicast"
	case Anycast:
		return "anycast"
	case CustomURL:
		return "custom-url"
	default:
		return fmt.Sprintf("redirection(%d)", uint8(k))
	}
}

// Service is one popular service.
type Service struct {
	ID     ServiceID
	Rank   int // 1 = most popular
	Name   string
	Domain string
	Owner  topology.ASN
	Kind   RedirectionKind
	// ECS reports whether the service's authoritative DNS honors EDNS0
	// Client Subnet. Only meaningful for DNS-based redirection.
	ECS bool
	// TTLSeconds is the DNS record TTL, the granularity at which cache
	// probing can observe activity.
	TTLSeconds int
	// BytesPerQuery scales traffic volume per DNS-visible interaction;
	// video services are much heavier than the rest.
	BytesPerQuery float64
}

// Site is one serving location of an owner.
type Site struct {
	Owner    topology.ASN
	HostAS   topology.ASN // == Owner for on-net sites
	Facility topology.FacilityID
	City     geo.City
	// Prefix is the /24 the site's servers answer from.
	Prefix topology.PrefixID
	// DeployedYear is when the site went live. Hypergiants rolled
	// off-nets out over years, biggest host networks first — the
	// longitudinal story TLS scans reconstruct ("seven years in the
	// life of hypergiants' off-nets"). On-net sites predate the window.
	DeployedYear int
}

// OffNet reports whether the site is an off-net cache (hosted inside
// another network).
func (s *Site) OffNet() bool { return s.HostAS != s.Owner }

// Deployment is an owner's global serving footprint.
type Deployment struct {
	Owner topology.ASN
	Sites []*Site
	// OffNetByHost indexes off-net sites by host AS.
	OffNetByHost map[topology.ASN]*Site
	// AnycastPrefix is the owner's anycast prefix (set iff the owner has
	// anycast services).
	AnycastPrefix topology.PrefixID
	HasAnycast    bool
	// AnycastSites are the on-net sites announcing the anycast prefix:
	// the region-hub deployments (real anycast services announce from
	// dozens of sites, not from every edge cache).
	AnycastSites []*Site
}

// OnNetSites returns the owner-hosted sites.
func (d *Deployment) OnNetSites() []*Site {
	var out []*Site
	for _, s := range d.Sites {
		if !s.OffNet() {
			out = append(out, s)
		}
	}
	return out
}

// Config tunes catalog generation.
type Config struct {
	// NServices is the catalog size (default 60).
	NServices int
	// ZipfAlpha is the popularity exponent across ranks.
	ZipfAlpha float64
	// OffNetMinSubscribersK: eyeballs at least this large may host
	// off-net caches.
	OffNetMinSubscribersK float64
	// OffNetProb is the per-(hypergiant, eligible eyeball) deployment
	// probability for off-net caches.
	OffNetProb float64
	// TopECS forces exactly this many of the top-20 services to support
	// ECS (the paper reports 15/20).
	TopECS int
}

// DefaultConfig returns the standard catalog parameters.
func DefaultConfig() Config {
	return Config{
		NServices:             60,
		ZipfAlpha:             1.15,
		OffNetMinSubscribersK: 2500,
		OffNetProb:            0.7,
		TopECS:                15,
	}
}

// Catalog holds every service and deployment in the world.
type Catalog struct {
	top      *topology.Topology
	Services []*Service // index = int(ID); sorted by rank
	// Deployments by owner ASN.
	Deployments map[topology.ASN]*Deployment
	// ReferenceCDN is the hypergiant whose "server logs" (ground-truth
	// traffic) validate client-discovery techniques (the Microsoft role).
	ReferenceCDN topology.ASN
	// Popularity is the Zipf popularity law over ranks.
	Popularity *randx.Zipf

	byDomain     map[string]*Service
	siteByPrefix map[topology.PrefixID]*Site
	anycastOwner map[topology.PrefixID]topology.ASN
}

// Top returns the service at the given index in the catalog, ordered by
// rank (Top(0) is the most popular service).
func (c *Catalog) Top(i int) *Service { return c.Services[i] }

// ByDomain returns the service registered under a domain.
func (c *Catalog) ByDomain(domain string) (*Service, bool) {
	s, ok := c.byDomain[domain]
	return s, ok
}

// SiteAt returns the serving site using a prefix, if any. This is what a
// TLS scan of the prefix reveals (cert ownership); the owner's name is the
// certificate's subject organization.
func (c *Catalog) SiteAt(p topology.PrefixID) (*Site, bool) {
	s, ok := c.siteByPrefix[p]
	return s, ok
}

// AnycastOwnerOf reports whether p is an anycast service prefix and who
// owns it.
func (c *Catalog) AnycastOwnerOf(p topology.PrefixID) (topology.ASN, bool) {
	o, ok := c.anycastOwner[p]
	return o, ok
}

// ServicesOf returns the services owned by an AS, by rank.
func (c *Catalog) ServicesOf(owner topology.ASN) []*Service {
	var out []*Service
	for _, s := range c.Services {
		if s.Owner == owner {
			out = append(out, s)
		}
	}
	return out
}

// ECSDomains returns the domains of ECS-supporting DNS-redirected services,
// most popular first — the domain list cache probing iterates over.
func (c *Catalog) ECSDomains() []string {
	var out []string
	for _, s := range c.Services {
		if s.ECS && s.Kind != Anycast {
			out = append(out, s.Domain)
		}
	}
	return out
}

// Owners returns every AS owning at least one service, ascending.
func (c *Catalog) Owners() []topology.ASN {
	seen := map[topology.ASN]bool{}
	var out []topology.ASN
	for _, s := range c.Services {
		if !seen[s.Owner] {
			seen[s.Owner] = true
			out = append(out, s.Owner)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// The off-net rollout window (inclusive), mirroring the seven-year study
// window of [25].
const (
	FirstOffNetYear = 2014
	LastOffNetYear  = 2021
)

// Build generates the service catalog and deployments for a topology.
func Build(top *topology.Topology, cfg Config, rng *randx.Source) *Catalog {
	if cfg.NServices <= 0 {
		cfg.NServices = 60
	}
	hgs := top.ASesOfType(topology.Hypergiant)
	clouds := top.ASesOfType(topology.Cloud)
	if len(hgs) == 0 {
		panic("services: topology has no hypergiants")
	}
	c := &Catalog{
		top:          top,
		Deployments:  map[topology.ASN]*Deployment{},
		Popularity:   randx.NewZipf(cfg.NServices, cfg.ZipfAlpha),
		byDomain:     map[string]*Service{},
		siteByPrefix: map[topology.PrefixID]*Site{},
		anycastOwner: map[topology.PrefixID]topology.ASN{},
	}
	c.ReferenceCDN = hgs[len(hgs)-1]
	if len(hgs) >= 3 {
		c.ReferenceCDN = hgs[2] // "MegaCDN" by generator naming
	}

	// --- Deployments --------------------------------------------------
	// Hypergiants: on-net sites at every facility they occupy, plus
	// off-net caches in large eyeballs. Clouds: on-net sites only.
	eyeballs := top.ASesOfType(topology.Eyeball)
	for _, owner := range append(append([]topology.ASN{}, hgs...), clouds...) {
		a := top.ASes[owner]
		d := &Deployment{Owner: owner, OffNetByHost: map[topology.ASN]*Site{}}
		for _, f := range a.Facilities {
			fac := top.Facility(f)
			pfx := top.AllocPrefixes(owner, 1, fac.City)[0]
			site := &Site{Owner: owner, HostAS: owner, Facility: f, City: fac.City, Prefix: pfx}
			d.Sites = append(d.Sites, site)
			c.siteByPrefix[pfx] = site
		}
		if a.Type == topology.Hypergiant {
			// Rank eligible hosts by size: the biggest ISPs got
			// their caches first.
			var eligible []topology.ASN
			for _, e := range eyeballs {
				if top.ASes[e].SubscribersK >= cfg.OffNetMinSubscribersK {
					eligible = append(eligible, e)
				}
			}
			sort.Slice(eligible, func(i, j int) bool {
				si, sj := top.ASes[eligible[i]].SubscribersK, top.ASes[eligible[j]].SubscribersK
				if si != sj {
					return si > sj
				}
				return eligible[i] < eligible[j]
			})
			for rank, e := range eligible {
				if !rng.Bool(cfg.OffNetProb) {
					continue
				}
				city := top.PrimaryCity(e)
				pfx := top.AllocPrefixes(e, 1, city)[0]
				site := &Site{Owner: owner, HostAS: e, Facility: -1, City: city, Prefix: pfx}
				// Deployment year by size rank with per-host
				// jitter (hash-based so the rng stream and
				// therefore the rest of the world are
				// unaffected).
				frac := float64(rank) / float64(max(len(eligible)-1, 1))
				j := randx.HashFloat(uint64(owner), 0x0ff, uint64(e)) * 0.25
				year := FirstOffNetYear + int((frac*0.85+j)*float64(LastOffNetYear-FirstOffNetYear))
				if year > LastOffNetYear {
					year = LastOffNetYear
				}
				site.DeployedYear = year
				d.Sites = append(d.Sites, site)
				d.OffNetByHost[e] = site
				c.siteByPrefix[pfx] = site
			}
		}
		c.Deployments[owner] = d
	}

	// --- Services ------------------------------------------------------
	names := []struct {
		name, domain string
		kind         RedirectionKind
	}{
		{"Vortex Search", "search.vortex.example", DNSUnicast},
		{"FaceSpace", "www.facespace.example", DNSUnicast},
		{"StreamFlix VOD", "vid.streamflix.example", CustomURL},
		{"Vortex Video", "tube.vortex.example", CustomURL},
		{"MegaCDN Edge", "edge.megacdn.example", DNSUnicast},
		{"ChatterBox", "chat.facespace.example", Anycast},
		{"ShopGiant", "www.shopgiant.example", DNSUnicast},
		{"ClipShare", "clips.clipshare.example", CustomURL},
		{"EdgeWave DNS", "cdn.edgewave.example", Anycast},
		{"MetaCast Live", "live.metacast.example", DNSUnicast},
	}
	for rank := 1; rank <= cfg.NServices; rank++ {
		id := ServiceID(rank - 1)
		var svc *Service
		if rank <= len(names) {
			n := names[rank-1]
			// Flagship services belong to the correspondingly named
			// hypergiant where one exists.
			owner := hgs[(rank-1)%len(hgs)]
			svc = &Service{
				ID: id, Rank: rank, Name: n.name, Domain: n.domain,
				Owner: owner, Kind: n.kind,
			}
		} else {
			// Long tail: mostly cloud-hosted, some hypergiant.
			owner := hgs[rng.Intn(len(hgs))]
			if len(clouds) > 0 && rng.Bool(0.7) {
				owner = clouds[rng.Intn(len(clouds))]
			}
			kind := DNSUnicast
			switch {
			case rng.Bool(0.12):
				kind = Anycast
			case rng.Bool(0.1):
				kind = CustomURL
			}
			svc = &Service{
				ID: id, Rank: rank,
				Name:   fmt.Sprintf("Service-%03d", rank),
				Domain: fmt.Sprintf("svc%03d.example", rank),
				Owner:  owner, Kind: kind,
			}
		}
		// MegaCDN Edge must be owned by the reference CDN.
		if svc.Domain == "edge.megacdn.example" {
			svc.Owner = c.ReferenceCDN
		}
		svc.TTLSeconds = []int{30, 60, 120, 300}[rng.Intn(4)]
		svc.BytesPerQuery = 40e3 * rng.Lognormal(0, 0.4)
		if svc.Kind == CustomURL {
			svc.BytesPerQuery *= 60 // video heavy
		}
		c.Services = append(c.Services, svc)
		c.byDomain[svc.Domain] = svc
	}

	// --- ECS support ----------------------------------------------------
	// Exactly TopECS of the top 20 honor ECS (paper: 15 of 20). Anycast
	// services never do (no DNS redirection to localize); the remaining
	// non-ECS slots go to the lightest top-20 ranks, mirroring the
	// paper's observation that ECS services carry 91% of top-20 traffic.
	for _, svc := range c.Services {
		switch {
		case svc.Kind == Anycast:
			svc.ECS = false
		case svc.Rank <= 20:
			svc.ECS = true
		default:
			svc.ECS = rng.Bool(0.45)
		}
	}
	nonECS := 0
	for _, svc := range c.Services[:min(20, len(c.Services))] {
		if svc.Kind == Anycast {
			nonECS++
		}
	}
	for rank := 20; rank >= 1 && nonECS < 20-cfg.TopECS; rank-- {
		svc := c.Services[rank-1]
		if svc.Kind != Anycast && svc.ECS {
			svc.ECS = false
			nonECS++
		}
	}

	// Anycast prefixes for owners with anycast services.
	hubCities := map[string]bool{}
	for _, r := range geo.Regions() {
		hubCities[geo.RegionHub(r).Name] = true
	}
	for _, s := range c.Services {
		if s.Kind != Anycast {
			continue
		}
		d := c.Deployments[s.Owner]
		if !d.HasAnycast {
			city := top.PrimaryCity(s.Owner)
			pfx := top.AllocPrefixes(s.Owner, 1, city)[0]
			d.AnycastPrefix = pfx
			d.HasAnycast = true
			c.anycastOwner[pfx] = s.Owner
			for _, site := range d.OnNetSites() {
				if hubCities[site.City.Name] {
					d.AnycastSites = append(d.AnycastSites, site)
				}
			}
			if len(d.AnycastSites) == 0 {
				d.AnycastSites = d.OnNetSites()
			}
		}
	}
	return c
}

// Topology returns the topology the catalog was built on.
func (c *Catalog) Topology() *topology.Topology { return c.top }
