package services

import (
	"testing"

	"itmap/internal/bgp"
	"itmap/internal/geo"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

func buildWorld(t testing.TB, seed int64) (*topology.Topology, *Catalog) {
	t.Helper()
	top := topology.Generate(topology.SmallGenConfig(seed))
	cat := Build(top, DefaultConfig(), randx.New(seed+1))
	return top, cat
}

func TestCatalogBasics(t *testing.T) {
	top, cat := buildWorld(t, 1)
	if len(cat.Services) != DefaultConfig().NServices {
		t.Fatalf("catalog has %d services", len(cat.Services))
	}
	for i, s := range cat.Services {
		if s.Rank != i+1 || int(s.ID) != i {
			t.Fatalf("rank/id misnumbered at %d: %+v", i, s)
		}
		if _, ok := top.ASes[s.Owner]; !ok {
			t.Fatalf("service %s has unknown owner %d", s.Name, s.Owner)
		}
		ot := top.ASes[s.Owner].Type
		if ot != topology.Hypergiant && ot != topology.Cloud {
			t.Fatalf("service %s owned by %v AS", s.Name, ot)
		}
		if s.TTLSeconds <= 0 || s.BytesPerQuery <= 0 {
			t.Fatalf("service %s has invalid TTL/bytes", s.Name)
		}
		if got, ok := cat.ByDomain(s.Domain); !ok || got != s {
			t.Fatalf("domain lookup broken for %s", s.Domain)
		}
	}
	if _, ok := cat.ByDomain("nonexistent.example"); ok {
		t.Error("unknown domain resolved")
	}
}

func TestTop20ECSCount(t *testing.T) {
	_, cat := buildWorld(t, 2)
	ecs := 0
	for _, s := range cat.Services[:20] {
		if s.ECS {
			ecs++
		}
	}
	// Anycast services in the top 20 have ECS forced off, so the count
	// is at most TopECS and close to it.
	if ecs < 12 || ecs > 15 {
		t.Errorf("top-20 ECS count = %d, want ~15", ecs)
	}
}

func TestDeploymentsHaveSitesAndOffNets(t *testing.T) {
	top, cat := buildWorld(t, 3)
	refOffNets := 0
	for owner, d := range cat.Deployments {
		if len(d.OnNetSites()) == 0 {
			t.Fatalf("owner %d has no on-net sites", owner)
		}
		for _, s := range d.Sites {
			if s.Owner != owner {
				t.Fatalf("site owner mismatch")
			}
			if got, ok := top.OwnerOf(s.Prefix); !ok || got != s.HostAS {
				t.Fatalf("site prefix %v not owned by host %d", s.Prefix, s.HostAS)
			}
			if site, ok := cat.SiteAt(s.Prefix); !ok || site != s {
				t.Fatalf("SiteAt broken for %v", s.Prefix)
			}
		}
		if top.ASes[owner].Type == topology.Cloud && len(d.OffNetByHost) != 0 {
			t.Errorf("cloud %d has off-nets", owner)
		}
		if owner == cat.ReferenceCDN {
			refOffNets = len(d.OffNetByHost)
		}
	}
	if refOffNets == 0 {
		t.Error("reference CDN deployed no off-net caches")
	}
}

func TestOffNetHostsAreLargeEyeballs(t *testing.T) {
	top, cat := buildWorld(t, 4)
	cfg := DefaultConfig()
	for _, d := range cat.Deployments {
		for host := range d.OffNetByHost {
			a := top.ASes[host]
			if a.Type != topology.Eyeball {
				t.Fatalf("off-net host %d is %v", host, a.Type)
			}
			if a.SubscribersK < cfg.OffNetMinSubscribersK {
				t.Fatalf("off-net host %d too small (%.0fk)", host, a.SubscribersK)
			}
		}
	}
}

func TestNearestSite(t *testing.T) {
	top, cat := buildWorld(t, 5)
	owner := cat.ReferenceCDN
	coords := []geo.Coord{
		{Lat: 48.9, Lon: 2.4}, {Lat: 35.7, Lon: 139.7}, {Lat: -23.6, Lon: -46.6},
	}
	for _, c := range coords {
		s := cat.NearestSiteTo(owner, c)
		if s == nil {
			t.Fatalf("no site near %v", c)
		}
		// No other site may be strictly closer.
		for _, o := range cat.Deployments[owner].Sites {
			if geo.DistanceKm(c, o.City.Coord) < geo.DistanceKm(c, s.City.Coord) {
				t.Fatalf("NearestSiteTo missed a closer site")
			}
		}
		on := cat.NearestOnNetSiteTo(owner, c)
		if on == nil || on.OffNet() {
			t.Fatalf("NearestOnNetSiteTo returned %+v", on)
		}
	}
	_ = top
}

func TestAnycastCatchments(t *testing.T) {
	top, cat := buildWorld(t, 6)
	ap := bgp.ComputeAll(top)
	var owner topology.ASN
	for _, s := range cat.Services {
		if s.Kind == Anycast {
			owner = s.Owner
			break
		}
	}
	if owner == 0 {
		t.Skip("no anycast service in this seed")
	}
	if !cat.Deployments[owner].HasAnycast {
		t.Fatal("anycast owner has no anycast prefix")
	}
	landed := 0
	sites := map[*Site]bool{}
	for _, e := range top.ASesOfType(topology.Eyeball) {
		s := cat.AnycastCatchment(ap, owner, e)
		if s == nil {
			continue
		}
		if s.OffNet() {
			t.Fatal("anycast landed at an off-net cache")
		}
		landed++
		sites[s] = true
	}
	if landed == 0 {
		t.Fatal("no eyeball reached the anycast owner")
	}
	if len(sites) < 2 {
		t.Errorf("all catchments land at %d site; expected geographic spread", len(sites))
	}
}

func TestCertAndSNI(t *testing.T) {
	top, cat := buildWorld(t, 7)
	// Every site prefix serves a cert naming the owner.
	for owner, d := range cat.Deployments {
		for _, s := range d.Sites {
			ci, ok := cat.CertAt(s.Prefix)
			if !ok || ci.OwnerASN != owner || ci.Org != top.ASes[owner].Name {
				t.Fatalf("CertAt(%v) = %+v, %v", s.Prefix, ci, ok)
			}
		}
	}
	// User prefixes do not answer.
	for _, e := range top.ASesOfType(topology.Eyeball) {
		p := top.ASes[e].Prefixes[0]
		if _, ok := cat.SiteAt(p); ok {
			continue // could be an off-net allocated later in the list
		}
		if _, ok := cat.CertAt(p); ok {
			t.Fatalf("non-server prefix %v answered TLS", p)
		}
		break
	}
	// SNI: a service's domain is served exactly on its owner's sites.
	svc := cat.Top(0)
	d := cat.Deployments[svc.Owner]
	if !cat.ServesSNI(d.Sites[0].Prefix, svc.Domain) {
		t.Error("owner site refuses its own service SNI")
	}
	for owner, od := range cat.Deployments {
		if owner == svc.Owner {
			continue
		}
		if cat.ServesSNI(od.Sites[0].Prefix, svc.Domain) {
			t.Errorf("foreign site serves %s", svc.Domain)
		}
	}
	if cat.ServesSNI(d.Sites[0].Prefix, "nope.example") {
		t.Error("unknown SNI served")
	}
}

func TestECSDomainsPopularFirst(t *testing.T) {
	_, cat := buildWorld(t, 8)
	domains := cat.ECSDomains()
	if len(domains) == 0 {
		t.Fatal("no ECS domains")
	}
	for _, dom := range domains {
		s, ok := cat.ByDomain(dom)
		if !ok || !s.ECS || s.Kind == Anycast {
			t.Fatalf("ECS domain list contains %s (%+v)", dom, s)
		}
	}
	first, _ := cat.ByDomain(domains[0])
	last, _ := cat.ByDomain(domains[len(domains)-1])
	if first.Rank > last.Rank {
		t.Error("ECS domains not ordered by popularity")
	}
}

func TestReferenceCDNIsHypergiant(t *testing.T) {
	top, cat := buildWorld(t, 9)
	if top.ASes[cat.ReferenceCDN].Type != topology.Hypergiant {
		t.Fatal("reference CDN is not a hypergiant")
	}
	found := false
	for _, s := range cat.Services {
		if s.Owner == cat.ReferenceCDN {
			found = true
		}
	}
	if !found {
		t.Error("reference CDN owns no services")
	}
}

func TestPopularityMassConcentrated(t *testing.T) {
	_, cat := buildWorld(t, 10)
	top5 := cat.Popularity.CumWeight(5)
	if top5 < 0.35 {
		t.Errorf("top-5 services carry only %.0f%% of demand", top5*100)
	}
}
