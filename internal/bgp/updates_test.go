package bgp

import (
	"bytes"
	"testing"

	"itmap/internal/mrt"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

func outageWorld(t *testing.T) (*topology.Topology, *AllPaths, *AllPaths, *Collector, topology.ASN) {
	t.Helper()
	top := topology.Generate(topology.TinyGenConfig(51))
	before := ComputeAll(top)
	col := &Collector{Peers: DefaultCollectorPeers(top, randx.New(3))}
	// Fail the transit AS with the most links.
	var target topology.ASN
	best := -1
	for _, asn := range top.ASesOfType(topology.Transit) {
		if n := len(top.ASes[asn].Neighbors); n > best {
			best, target = n, asn
		}
	}
	sub := top.Subgraph(func(l topology.LinkInfo) bool {
		return l.A != target && l.B != target
	})
	after := ComputeAll(sub)
	return top, before, after, col, target
}

func TestComputeUpdatesReflectChanges(t *testing.T) {
	top, before, after, col, target := outageWorld(t)
	updates := col.ComputeUpdates(before, after)
	if len(updates) == 0 {
		t.Fatal("no updates for a transit outage")
	}
	peers := map[topology.ASN]bool{}
	for _, p := range col.Peers {
		peers[p] = true
	}
	announced, withdrawn := 0, 0
	for _, u := range updates {
		if !peers[topology.ASN(u.PeerASN)] {
			t.Fatalf("update from non-peer AS %d", u.PeerASN)
		}
		withdrawn += len(u.Withdrawn)
		announced += len(u.Announced)
		// Announced paths must start at the peer and avoid the
		// failed AS.
		if len(u.Announced) > 0 {
			if topology.ASN(u.ASPath[0]) != topology.ASN(u.PeerASN) {
				t.Fatalf("announcement path %v does not start at peer", u.ASPath)
			}
			for _, asn := range u.ASPath {
				if topology.ASN(asn) == target {
					t.Fatalf("post-outage path %v still uses failed AS", u.ASPath)
				}
			}
		}
	}
	if announced == 0 {
		t.Error("no announcements (reroutes) in update stream")
	}
	_ = withdrawn
	_ = top
}

func TestUpdatesMRTRoundTrip(t *testing.T) {
	_, before, after, col, _ := outageWorld(t)
	updates := col.ComputeUpdates(before, after)
	var buf bytes.Buffer
	if err := ExportUpdatesMRT(&buf, updates, 1700000000); err != nil {
		t.Fatal(err)
	}
	got, err := mrt.ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(updates) {
		t.Fatalf("round trip: %d vs %d updates", len(got), len(updates))
	}
	for i := range got {
		if got[i].PeerASN != updates[i].PeerASN ||
			len(got[i].Withdrawn) != len(updates[i].Withdrawn) ||
			len(got[i].Announced) != len(updates[i].Announced) ||
			len(got[i].ASPath) != len(updates[i].ASPath) {
			t.Fatalf("update %d changed in round trip:\n%+v\n%+v", i, updates[i], got[i])
		}
		for j := range got[i].ASPath {
			if got[i].ASPath[j] != updates[i].ASPath[j] {
				t.Fatalf("AS path changed: %v vs %v", got[i].ASPath, updates[i].ASPath)
			}
		}
	}
}

func TestLinksFromUpdatesAreNewPathLinks(t *testing.T) {
	top, before, after, col, target := outageWorld(t)
	updates := col.ComputeUpdates(before, after)
	links := LinksFromUpdates(updates)
	if len(links) == 0 {
		t.Fatal("no links from updates")
	}
	for lk := range links {
		if lk.Lo == target || lk.Hi == target {
			t.Fatalf("update links include the failed AS: %v", lk)
		}
		if !top.HasLink(lk.Lo, lk.Hi) {
			t.Fatalf("update link %v not in topology", lk)
		}
	}
	_ = before
	_ = after
}

func TestNoChangesNoUpdates(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(52))
	ap := ComputeAll(top)
	col := &Collector{Peers: DefaultCollectorPeers(top, randx.New(4))}
	if got := col.ComputeUpdates(ap, ap); len(got) != 0 {
		t.Fatalf("identical states produced %d updates", len(got))
	}
}
