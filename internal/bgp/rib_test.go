package bgp

import (
	"testing"

	"itmap/internal/randx"
	"itmap/internal/topology"
)

// buildLine makes a 5-AS chain for hand-checkable routing:
//
//	t1a --peer-- t1b
//	 |            |
//	 tr (cust)   hg (peer of both tier-1s)
//	 |
//
// eb (cust of tr)
func buildLine(t *testing.T) *topology.Topology {
	t.Helper()
	top := topology.NewTopology()
	add := func(asn topology.ASN, ty topology.ASType) {
		top.AddAS(&topology.AS{ASN: asn, Name: "x", Type: ty, Country: "US"})
	}
	add(1, topology.Tier1)
	add(2, topology.Tier1)
	add(10, topology.Transit)
	add(20, topology.Eyeball)
	add(30, topology.Hypergiant)
	top.AddLink(1, 2, topology.RelPeer, topology.PrivatePeering, 0)
	top.AddLink(10, 1, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(20, 10, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(30, 1, topology.RelPeer, topology.PrivatePeering, 0)
	top.AddLink(30, 2, topology.RelPeer, topology.PrivatePeering, 0)
	top.Facilities = []topology.Facility{{ID: 0, Name: "f0"}}
	top.Freeze()
	return top
}

func TestRIBHandBuilt(t *testing.T) {
	top := buildLine(t)
	rib := ComputeRIB(top, 30) // routes toward the hypergiant

	cases := []struct {
		src  topology.ASN
		path []topology.ASN
		typ  RouteType
	}{
		{30, []topology.ASN{30}, Origin},
		{1, []topology.ASN{1, 30}, ViaPeer},
		{2, []topology.ASN{2, 30}, ViaPeer},
		{10, []topology.ASN{10, 1, 30}, ViaProvider},
		{20, []topology.ASN{20, 10, 1, 30}, ViaProvider},
	}
	for _, c := range cases {
		got := rib.PathFrom(c.src)
		if len(got) != len(c.path) {
			t.Fatalf("path %d->30 = %v, want %v", c.src, got, c.path)
		}
		for i := range got {
			if got[i] != c.path[i] {
				t.Fatalf("path %d->30 = %v, want %v", c.src, got, c.path)
			}
		}
		i, _ := top.Index(c.src)
		if rib.Type[i] != c.typ {
			t.Errorf("route type at %d = %v, want %v", c.src, rib.Type[i], c.typ)
		}
	}
}

func TestRIBPrefersCustomerOverPeer(t *testing.T) {
	// dst is both a customer (via long chain) and reachable via peer
	// (short): customer route must win despite being longer.
	top := topology.NewTopology()
	add := func(asn topology.ASN, ty topology.ASType) {
		top.AddAS(&topology.AS{ASN: asn, Type: ty, Country: "US"})
	}
	add(1, topology.Tier1)
	add(2, topology.Tier1)
	add(3, topology.Transit) // mid customer of 1
	add(4, topology.Eyeball) // dst: customer of 3, peer of 2
	top.AddLink(1, 2, topology.RelPeer, topology.PrivatePeering, 0)
	top.AddLink(3, 1, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(4, 3, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(4, 2, topology.RelPeer, topology.PrivatePeering, 0)
	top.Freeze()

	rib := ComputeRIB(top, 4)
	i1, _ := top.Index(1)
	if rib.Type[i1] != ViaCustomer {
		t.Errorf("AS1 should reach AS4 via customer chain, got %v", rib.Type[i1])
	}
	if got := rib.HopsFrom(1); got != 2 {
		t.Errorf("AS1 hops = %d, want 2 (1-3-4)", got)
	}
	// AS2 hears 4 directly via peering: 1 hop.
	if got := rib.HopsFrom(2); got != 1 {
		t.Errorf("AS2 hops = %d, want 1", got)
	}
}

func TestValleyFreePaths(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(21))
	ap := ComputeAll(top)
	asns := top.ASNs()
	rng := randx.New(4)
	checked := 0
	for trial := 0; trial < 3000; trial++ {
		src := asns[rng.Intn(len(asns))]
		dst := asns[rng.Intn(len(asns))]
		path := ap.Path(src, dst)
		if path == nil {
			t.Fatalf("no route %d -> %d in a fully generated world", src, dst)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("path endpoints wrong: %v for %d->%d", path, src, dst)
		}
		checkValleyFree(t, top, path)
		checked++
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

// checkValleyFree asserts the path is uphill (customer->provider), then at
// most one peer link, then downhill. Note path direction is src..dst and
// traffic flows src->dst, so each step's relationship is from the earlier
// AS's point of view.
func checkValleyFree(t *testing.T, top *topology.Topology, path []topology.ASN) {
	t.Helper()
	const (
		up = iota
		acrossOrDown
	)
	state := up
	peers := 0
	for i := 0; i+1 < len(path); i++ {
		rel, ok := top.ASes[path[i]].HasNeighbor(path[i+1])
		if !ok {
			t.Fatalf("path %v uses nonexistent link %d-%d", path, path[i], path[i+1])
		}
		switch rel {
		case topology.RelProvider: // going up
			if state != up {
				t.Fatalf("path %v goes up after going across/down", path)
			}
		case topology.RelPeer:
			peers++
			if peers > 1 {
				t.Fatalf("path %v crosses two peer links", path)
			}
			state = acrossOrDown
		case topology.RelCustomer: // going down
			state = acrossOrDown
		}
	}
}

func TestAllPathsSymmetricReachability(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(5))
	ap := ComputeAll(top)
	asns := top.ASNs()
	for _, a := range asns[:20] {
		for _, b := range asns[len(asns)-20:] {
			if ap.Hops(a, b) < 0 || ap.Hops(b, a) < 0 {
				t.Fatalf("unreachable pair %d <-> %d", a, b)
			}
		}
	}
}

func TestShortestAmongCustomerRoutes(t *testing.T) {
	// Diamond: 5 has two provider paths up to 1; shortest must win.
	top := topology.NewTopology()
	add := func(asn topology.ASN, ty topology.ASType) {
		top.AddAS(&topology.AS{ASN: asn, Type: ty, Country: "US"})
	}
	add(1, topology.Tier1)
	add(2, topology.Transit)
	add(3, topology.Transit)
	add(4, topology.Transit)
	add(5, topology.Eyeball)
	top.AddLink(2, 1, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(3, 1, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(4, 3, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(5, 2, topology.RelProvider, topology.TransitLink, 0)
	top.AddLink(5, 4, topology.RelProvider, topology.TransitLink, 0)
	top.Freeze()
	rib := ComputeRIB(top, 5)
	// From 1: customer routes 1-2-5 (2 hops) and 1-3-4-5 (3): want 2.
	if got := rib.HopsFrom(1); got != 2 {
		t.Errorf("hops 1->5 = %d, want 2", got)
	}
	path := rib.PathFrom(1)
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("path 1->5 = %v, want [1 2 5]", path)
	}
}

func TestCollectorMissesGiantPeerings(t *testing.T) {
	top := topology.Generate(topology.SmallGenConfig(17))
	ap := ComputeAll(top)
	col := &Collector{Peers: DefaultCollectorPeers(top, randx.New(1))}
	obs := col.ObservedLinks(ap)
	vis := MeasureVisibility(top, obs)
	if vis.GiantPeerings == 0 {
		t.Fatal("world has no giant peerings")
	}
	if f := vis.FracGiantPeeringsVisible(); f > 0.5 {
		t.Errorf("collectors see %.0f%% of giant peerings; public topologies should miss most", f*100)
	}
	if f := vis.FracVisible(); f <= 0 {
		t.Errorf("collectors observed no links at all (%f)", f)
	}
	// Observed topology must still be a valid subgraph.
	sub := top.SubgraphWithLinks(obs)
	if sub.NumLinks() != vis.VisibleLinks {
		t.Errorf("subgraph has %d links, visibility says %d", sub.NumLinks(), vis.VisibleLinks)
	}
}

func TestUnreachableInPrunedGraph(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(2))
	// Keep only transit links: peer-only ASes (hypergiants) become
	// unreachable from below in phase-2-less graphs.
	sub := top.Subgraph(func(l topology.LinkInfo) bool {
		return l.Kind == topology.TransitLink
	})
	hgs := sub.ASesOfType(topology.Hypergiant)
	if len(hgs) == 0 {
		t.Skip("no hypergiants")
	}
	rib := ComputeRIB(sub, hgs[0])
	eyeballs := sub.ASesOfType(topology.Eyeball)
	reach := 0
	for _, e := range eyeballs {
		if rib.Reachable(e) {
			reach++
		}
	}
	if reach != 0 {
		t.Errorf("%d eyeballs reach a hypergiant with all peering removed", reach)
	}
}

func BenchmarkComputeRIB(b *testing.B) {
	top := topology.Generate(topology.SmallGenConfig(1))
	hgs := top.ASesOfType(topology.Hypergiant)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeRIB(top, hgs[i%len(hgs)])
	}
}

func BenchmarkComputeAllTiny(b *testing.B) {
	top := topology.Generate(topology.TinyGenConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeAll(top)
	}
}
