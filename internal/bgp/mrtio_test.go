package bgp

import (
	"bytes"
	"testing"

	"itmap/internal/mrt"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

func TestMRTExportRoundTripsObservedLinks(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(41))
	ap := ComputeAll(top)
	col := &Collector{Peers: DefaultCollectorPeers(top, randx.New(1))}

	var buf bytes.Buffer
	if err := col.ExportMRT(&buf, ap, 1700000000); err != nil {
		t.Fatal(err)
	}
	dump, err := mrt.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Peers) != len(col.Peers) {
		t.Fatalf("peer table has %d peers, want %d", len(dump.Peers), len(col.Peers))
	}
	for i, p := range dump.Peers {
		if topology.ASN(p.ASN) != col.Peers[i] {
			t.Fatalf("peer %d ASN %d != %d", i, p.ASN, col.Peers[i])
		}
	}
	// The links a researcher derives from the dump are exactly the links
	// the collector observed.
	fromDump := ObservedLinksFromDump(dump)
	direct := col.ObservedLinks(ap)
	if len(fromDump) != len(direct) {
		t.Fatalf("dump-derived links %d != direct %d", len(fromDump), len(direct))
	}
	for lk := range direct {
		if !fromDump[lk] {
			t.Fatalf("link %v missing from dump", lk)
		}
	}
}

func TestMRTDumpSizeSane(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(42))
	ap := ComputeAll(top)
	col := &Collector{Peers: DefaultCollectorPeers(top, randx.New(2))}
	var buf bytes.Buffer
	if err := col.ExportMRT(&buf, ap, 0); err != nil {
		t.Fatal(err)
	}
	// One RIB record per origin with a prefix; each entry ~ small.
	if buf.Len() < 1000 {
		t.Errorf("dump suspiciously small: %d bytes", buf.Len())
	}
	dump, err := mrt.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.RIBs) != top.NumASes() {
		t.Errorf("dump has %d RIBs for %d ASes", len(dump.RIBs), top.NumASes())
	}
	// AS paths in entries start at the peer and end at the origin.
	for _, rib := range dump.RIBs {
		origin, ok := top.OwnerOf(mustPrefixID(t, rib))
		if !ok {
			t.Fatalf("dump prefix %v has no owner", rib.Prefix)
		}
		for _, e := range rib.Entries {
			if topology.ASN(e.ASPath[len(e.ASPath)-1]) != origin {
				t.Fatalf("AS path %v does not end at origin %d", e.ASPath, origin)
			}
			if topology.ASN(e.ASPath[0]) != topology.ASN(dump.Peers[e.PeerIndex].ASN) {
				t.Fatalf("AS path %v does not start at peer", e.ASPath)
			}
		}
	}
}

func mustPrefixID(t *testing.T, rib mrt.RIB) topology.PrefixID {
	t.Helper()
	p, err := topology.PrefixFromAddr(rib.Prefix.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return p
}
