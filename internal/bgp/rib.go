// Package bgp computes interdomain routes over a topology using the
// Gao–Rexford model: routes learned from customers are preferred over routes
// from peers, which beat routes from providers; customer routes are exported
// to everyone, peer and provider routes only to customers. Ties break on
// shortest AS path, then lowest next-hop ASN. The same machinery runs on
// both the true topology (ground-truth paths) and on observed subgraphs
// (the paper's §3.3 path prediction on public topologies).
package bgp

import (
	"fmt"
	"runtime"
	"sync"

	"itmap/internal/topology"
)

// RouteType says how an AS learned its best route toward a destination.
type RouteType uint8

// Route types in decreasing preference order.
const (
	// Unreachable means no policy-compliant route exists.
	Unreachable RouteType = iota
	// Origin is the destination itself.
	Origin
	// ViaCustomer routes were learned from a customer.
	ViaCustomer
	// ViaPeer routes were learned from a settlement-free peer.
	ViaPeer
	// ViaProvider routes were learned from a transit provider.
	ViaProvider
)

// String names the route type.
func (rt RouteType) String() string {
	switch rt {
	case Unreachable:
		return "unreachable"
	case Origin:
		return "origin"
	case ViaCustomer:
		return "customer"
	case ViaPeer:
		return "peer"
	case ViaProvider:
		return "provider"
	default:
		return fmt.Sprintf("routetype(%d)", uint8(rt))
	}
}

// RIB holds every AS's best route toward one origin AS. Entries are indexed
// by the topology's dense AS index.
type RIB struct {
	top    *topology.Topology
	origin topology.ASN

	// NextHop[i] is the dense index of the next hop of AS i toward the
	// origin, or -1.
	NextHop []int32
	// PathLen[i] is the AS-path length (hops) from AS i to the origin.
	PathLen []uint16
	// Type[i] is how AS i learned its best route.
	Type []RouteType
}

// Origin returns the destination AS this RIB routes toward.
func (r *RIB) Origin() topology.ASN { return r.origin }

// ComputeRIB computes best routes from every AS toward origin using
// three-phase Gao–Rexford propagation.
func ComputeRIB(top *topology.Topology, origin topology.ASN) *RIB {
	n := top.NumASes()
	r := &RIB{
		top:     top,
		origin:  origin,
		NextHop: make([]int32, n),
		PathLen: make([]uint16, n),
		Type:    make([]RouteType, n),
	}
	for i := range r.NextHop {
		r.NextHop[i] = -1
	}
	oi, ok := top.Index(origin)
	if !ok {
		return r
	}
	r.Type[oi] = Origin
	asns := top.ASNs()

	// Phase 1: customer routes climb provider links. BFS by level with
	// deterministic min-ASN next-hop selection per level.
	frontier := []int{oi}
	for level := uint16(1); len(frontier) > 0; level++ {
		next := map[int]int{} // candidate idx -> best (min-ASN) next hop idx
		for _, ui := range frontier {
			u := top.ASes[asns[ui]]
			for _, nb := range u.Neighbors {
				if nb.Rel != topology.RelProvider {
					continue
				}
				pi, _ := top.Index(nb.ASN)
				if r.Type[pi] != Unreachable {
					continue // already has a customer route (or is origin)
				}
				if cur, seen := next[pi]; !seen || asns[ui] < asns[cur] {
					next[pi] = ui
				}
			}
		}
		frontier = frontier[:0]
		for pi, via := range next {
			r.Type[pi] = ViaCustomer
			r.NextHop[pi] = int32(via)
			r.PathLen[pi] = level
			frontier = append(frontier, pi)
		}
	}

	// Phase 2: ASes with customer routes (or the origin) export to peers;
	// peer routes take one peer hop and are not re-exported upward.
	type peerOffer struct {
		len uint16
		via int
	}
	offers := map[int]peerOffer{}
	for ui := 0; ui < n; ui++ {
		if r.Type[ui] != ViaCustomer && r.Type[ui] != Origin {
			continue
		}
		u := top.ASes[asns[ui]]
		for _, nb := range u.Neighbors {
			if nb.Rel != topology.RelPeer {
				continue
			}
			vi, _ := top.Index(nb.ASN)
			if r.Type[vi] == ViaCustomer || r.Type[vi] == Origin {
				continue // customer routes beat peer routes
			}
			offer := peerOffer{len: r.PathLen[ui] + 1, via: ui}
			cur, seen := offers[vi]
			if !seen || offer.len < cur.len ||
				(offer.len == cur.len && asns[offer.via] < asns[cur.via]) {
				offers[vi] = offer
			}
		}
	}
	for vi, o := range offers {
		r.Type[vi] = ViaPeer
		r.NextHop[vi] = int32(o.via)
		r.PathLen[vi] = o.len
	}

	// Phase 3: everything with a route exports to customers; provider
	// routes propagate down. Dijkstra by path length (bucket queue) with
	// min-ASN tie-break.
	maxLen := uint16(n + 2)
	buckets := make([][]int, maxLen+2)
	for ui := 0; ui < n; ui++ {
		if r.Type[ui] != Unreachable {
			buckets[r.PathLen[ui]] = append(buckets[r.PathLen[ui]], ui)
		}
	}
	for l := uint16(0); l <= maxLen; l++ {
		// Deterministic next-hop choice among equal-length parents:
		// collect candidates for this level first.
		cands := map[int]int{}
		for _, ui := range buckets[l] {
			if r.PathLen[ui] != l || r.Type[ui] == Unreachable {
				continue
			}
			u := top.ASes[asns[ui]]
			for _, nb := range u.Neighbors {
				if nb.Rel != topology.RelCustomer {
					continue
				}
				ci, _ := top.Index(nb.ASN)
				if r.Type[ci] != Unreachable {
					continue
				}
				if cur, seen := cands[ci]; !seen || asns[ui] < asns[cur] {
					cands[ci] = ui
				}
			}
		}
		for ci, via := range cands {
			r.Type[ci] = ViaProvider
			r.NextHop[ci] = int32(via)
			r.PathLen[ci] = l + 1
			if l+1 <= maxLen {
				buckets[l+1] = append(buckets[l+1], ci)
			}
		}
	}
	return r
}

// Reachable reports whether src has a route to the origin.
func (r *RIB) Reachable(src topology.ASN) bool {
	i, ok := r.top.Index(src)
	return ok && r.Type[i] != Unreachable
}

// PathFrom returns the AS path from src to the origin, inclusive of both
// ends, or nil if unreachable.
func (r *RIB) PathFrom(src topology.ASN) []topology.ASN {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return nil
	}
	asns := r.top.ASNs()
	path := []topology.ASN{src}
	for r.Type[i] != Origin {
		i = int(r.NextHop[i])
		path = append(path, asns[i])
		if len(path) > r.top.NumASes() {
			panic("bgp: next-hop cycle")
		}
	}
	return path
}

// HopsFrom returns the AS-path length in hops (0 = src is the origin), or
// -1 if unreachable.
func (r *RIB) HopsFrom(src topology.ASN) int {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return -1
	}
	return int(r.PathLen[i])
}

// AllPaths holds RIBs for every origin in a topology.
type AllPaths struct {
	top  *topology.Topology
	ribs []*RIB // by dense origin index
}

// ComputeAll computes RIBs for every origin, in parallel.
func ComputeAll(top *topology.Topology) *AllPaths {
	asns := top.ASNs()
	ap := &AllPaths{top: top, ribs: make([]*RIB, len(asns))}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				ap.ribs[i] = ComputeRIB(top, asns[i])
			}
		}()
	}
	for i := range asns {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return ap
}

// RIBFor returns the RIB toward the given origin, or nil if unknown.
func (ap *AllPaths) RIBFor(origin topology.ASN) *RIB {
	i, ok := ap.top.Index(origin)
	if !ok {
		return nil
	}
	return ap.ribs[i]
}

// Path returns the AS path src→dst, or nil if unreachable.
func (ap *AllPaths) Path(src, dst topology.ASN) []topology.ASN {
	r := ap.RIBFor(dst)
	if r == nil {
		return nil
	}
	return r.PathFrom(src)
}

// Hops returns the AS-path length src→dst in hops, or -1.
func (ap *AllPaths) Hops(src, dst topology.ASN) int {
	r := ap.RIBFor(dst)
	if r == nil {
		return -1
	}
	return r.HopsFrom(src)
}

// Topology returns the topology these paths were computed on.
func (ap *AllPaths) Topology() *topology.Topology { return ap.top }
