// Package bgp computes interdomain routes over a topology using the
// Gao–Rexford model: routes learned from customers are preferred over routes
// from peers, which beat routes from providers; customer routes are exported
// to everyone, peer and provider routes only to customers. Ties break on
// shortest AS path, then lowest next-hop ASN. The same machinery runs on
// both the true topology (ground-truth paths) and on observed subgraphs
// (the paper's §3.3 path prediction on public topologies).
package bgp

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"itmap/internal/obs"
	"itmap/internal/parallel"
	"itmap/internal/topology"
)

// RouteType says how an AS learned its best route toward a destination.
type RouteType uint8

// Route types in decreasing preference order.
const (
	// Unreachable means no policy-compliant route exists.
	Unreachable RouteType = iota
	// Origin is the destination itself.
	Origin
	// ViaCustomer routes were learned from a customer.
	ViaCustomer
	// ViaPeer routes were learned from a settlement-free peer.
	ViaPeer
	// ViaProvider routes were learned from a transit provider.
	ViaProvider
)

// String names the route type.
func (rt RouteType) String() string {
	switch rt {
	case Unreachable:
		return "unreachable"
	case Origin:
		return "origin"
	case ViaCustomer:
		return "customer"
	case ViaPeer:
		return "peer"
	case ViaProvider:
		return "provider"
	default:
		return fmt.Sprintf("routetype(%d)", uint8(rt))
	}
}

// RIB holds every AS's best route toward one origin AS. Entries are indexed
// by the topology's dense AS index.
type RIB struct {
	top    *topology.Topology
	origin topology.ASN

	// NextHop[i] is the dense index of the next hop of AS i toward the
	// origin, or -1.
	NextHop []int32
	// PathLen[i] is the AS-path length (hops) from AS i to the origin.
	PathLen []uint16
	// Type[i] is how AS i learned its best route.
	Type []RouteType
}

// Origin returns the destination AS this RIB routes toward.
func (r *RIB) Origin() topology.ASN { return r.origin }

// scratch holds the per-level candidate state ComputeRIB needs, as dense
// epoch-stamped slices instead of per-level maps. One scratch is reused
// across every origin a worker sweeps (via scratchPool), so the per-origin
// allocation cost is just the RIB's three output arrays.
type scratch struct {
	epoch uint32
	// stamp[i] == epoch marks i as a candidate in the current round;
	// bumping epoch clears all candidates in O(1).
	stamp []uint32
	// via[i] is the best (min-ASN) next hop offered to candidate i this
	// round; offLen[i] is the offered path length (phase 2 only).
	via    []int32
	offLen []uint16
	// candA/candB are the frontier and the next-candidate list; phases
	// ping-pong between them so both retain capacity.
	candA, candB []int32
	// buckets is phase 3's path-length bucket queue.
	buckets [][]int32
}

var scratchPool sync.Pool

// scratchReuses counts pool hits — RIB computations that skipped the three
// scratch allocations. Pool retention depends on GC timing and scheduler
// locality, so the derived metric family is registered volatile.
var scratchReuses atomic.Uint64

func getScratch(n int) *scratch {
	s, _ := scratchPool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	} else {
		scratchReuses.Add(1)
	}
	if len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.via = make([]int32, n)
		s.offLen = make([]uint16, n)
		s.epoch = 0
	}
	return s
}

// nextEpoch starts a fresh candidate round, handling uint32 wraparound.
func (s *scratch) nextEpoch() uint32 {
	if s.epoch == math.MaxUint32 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	return s.epoch
}

// ComputeRIB computes best routes from every AS toward origin using
// three-phase Gao–Rexford propagation.
func ComputeRIB(top *topology.Topology, origin topology.ASN) *RIB {
	n := top.NumASes()
	r := &RIB{
		top:     top,
		origin:  origin,
		NextHop: make([]int32, n),
		PathLen: make([]uint16, n),
		Type:    make([]RouteType, n),
	}
	for i := range r.NextHop {
		r.NextHop[i] = -1
	}
	oi, ok := top.Index(origin)
	if !ok {
		return r
	}
	r.Type[oi] = Origin
	asns := top.ASNs()
	li := top.LinkIndex() // CSR neighbor rows: no map lookups below
	s := getScratch(n)
	defer scratchPool.Put(s)

	// Phase 1: customer routes climb provider links. BFS by level with
	// deterministic min-ASN next-hop selection per level.
	frontier := append(s.candA[:0], int32(oi))
	next := s.candB[:0]
	for level := uint16(1); len(frontier) > 0; level++ {
		e := s.nextEpoch()
		next = next[:0]
		for _, uiv := range frontier {
			ui := int(uiv)
			nbrs, _ := li.Row(ui)
			u := top.ASes[asns[ui]]
			for k := range u.Neighbors {
				if u.Neighbors[k].Rel != topology.RelProvider {
					continue
				}
				pi := int(nbrs[k])
				if r.Type[pi] != Unreachable {
					continue // already has a customer route (or is origin)
				}
				if s.stamp[pi] != e {
					s.stamp[pi] = e
					s.via[pi] = uiv
					next = append(next, int32(pi))
				} else if asns[ui] < asns[s.via[pi]] {
					s.via[pi] = uiv
				}
			}
		}
		for _, piv := range next {
			pi := int(piv)
			r.Type[pi] = ViaCustomer
			r.NextHop[pi] = s.via[pi]
			r.PathLen[pi] = level
		}
		frontier, next = next, frontier
	}
	s.candA, s.candB = frontier[:0], next[:0] // keep grown capacity pooled

	// Phase 2: ASes with customer routes (or the origin) export to peers;
	// peer routes take one peer hop and are not re-exported upward.
	e := s.nextEpoch()
	offered := s.candA[:0]
	for ui := 0; ui < n; ui++ {
		if r.Type[ui] != ViaCustomer && r.Type[ui] != Origin {
			continue
		}
		nbrs, _ := li.Row(ui)
		u := top.ASes[asns[ui]]
		for k := range u.Neighbors {
			if u.Neighbors[k].Rel != topology.RelPeer {
				continue
			}
			vi := int(nbrs[k])
			if r.Type[vi] == ViaCustomer || r.Type[vi] == Origin {
				continue // customer routes beat peer routes
			}
			olen := r.PathLen[ui] + 1
			if s.stamp[vi] != e {
				s.stamp[vi] = e
				s.via[vi] = int32(ui)
				s.offLen[vi] = olen
				offered = append(offered, int32(vi))
			} else if olen < s.offLen[vi] ||
				(olen == s.offLen[vi] && asns[ui] < asns[s.via[vi]]) {
				s.via[vi] = int32(ui)
				s.offLen[vi] = olen
			}
		}
	}
	for _, viv := range offered {
		vi := int(viv)
		r.Type[vi] = ViaPeer
		r.NextHop[vi] = s.via[vi]
		r.PathLen[vi] = s.offLen[vi]
	}
	s.candA = offered[:0]

	// Phase 3: everything with a route exports to customers; provider
	// routes propagate down. Dijkstra by path length (bucket queue) with
	// min-ASN tie-break.
	maxLen := uint16(n + 2)
	if cap(s.buckets) < int(maxLen)+2 {
		s.buckets = make([][]int32, maxLen+2)
	}
	buckets := s.buckets[:maxLen+2]
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	for ui := 0; ui < n; ui++ {
		if r.Type[ui] != Unreachable {
			buckets[r.PathLen[ui]] = append(buckets[r.PathLen[ui]], int32(ui))
		}
	}
	for l := uint16(0); l <= maxLen; l++ {
		// Deterministic next-hop choice among equal-length parents:
		// collect candidates for this level first.
		e := s.nextEpoch()
		cands := s.candA[:0]
		for _, uiv := range buckets[l] {
			ui := int(uiv)
			if r.PathLen[ui] != l || r.Type[ui] == Unreachable {
				continue
			}
			nbrs, _ := li.Row(ui)
			u := top.ASes[asns[ui]]
			for k := range u.Neighbors {
				if u.Neighbors[k].Rel != topology.RelCustomer {
					continue
				}
				ci := int(nbrs[k])
				if r.Type[ci] != Unreachable {
					continue
				}
				if s.stamp[ci] != e {
					s.stamp[ci] = e
					s.via[ci] = uiv
					cands = append(cands, int32(ci))
				} else if asns[ui] < asns[s.via[ci]] {
					s.via[ci] = uiv
				}
			}
		}
		for _, civ := range cands {
			ci := int(civ)
			r.Type[ci] = ViaProvider
			r.NextHop[ci] = s.via[ci]
			r.PathLen[ci] = l + 1
			if l+1 <= maxLen {
				buckets[l+1] = append(buckets[l+1], civ)
			}
		}
		s.candA = cands[:0]
	}
	s.buckets = buckets

	reachable := uint64(0)
	for ui := 0; ui < n; ui++ {
		if r.Type[ui] != Unreachable {
			reachable++
		}
	}
	obs.C("itm_bgp_ribs_computed_total", "RIBs computed (one per origin sweep).").Inc()
	obs.C("itm_bgp_rib_routes_total", "Reachable best-route entries across all computed RIBs.").Add(reachable)
	return r
}

// Reachable reports whether src has a route to the origin.
func (r *RIB) Reachable(src topology.ASN) bool {
	i, ok := r.top.Index(src)
	return ok && r.Type[i] != Unreachable
}

// PathFrom returns the AS path from src to the origin, inclusive of both
// ends, or nil if unreachable.
func (r *RIB) PathFrom(src topology.ASN) []topology.ASN {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return nil
	}
	return r.AppendPathFrom(make([]topology.ASN, 0, r.PathLen[i]+1), src)
}

// AppendPathFrom appends the AS path src→origin (inclusive of both ends) to
// dst and returns the extended slice — zero-alloc when dst has capacity.
// dst is returned unchanged if src is unknown or unreachable.
func (r *RIB) AppendPathFrom(dst []topology.ASN, src topology.ASN) []topology.ASN {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return dst
	}
	asns := r.top.ASNs()
	base := len(dst)
	dst = append(dst, src)
	for r.Type[i] != Origin {
		i = int(r.NextHop[i])
		dst = append(dst, asns[i])
		if len(dst)-base > r.top.NumASes() {
			panic("bgp: next-hop cycle")
		}
	}
	return dst
}

// VisitPath streams the path src→origin through visit, one AS per hop
// (src first, origin last), without allocating. It returns the hop count,
// or -1 if src is unknown or unreachable.
func (r *RIB) VisitPath(src topology.ASN, visit func(asn topology.ASN)) int {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return -1
	}
	asns := r.top.ASNs()
	hops := 0
	visit(src)
	for r.Type[i] != Origin {
		i = int(r.NextHop[i])
		visit(asns[i])
		hops++
		if hops > r.top.NumASes() {
			panic("bgp: next-hop cycle")
		}
	}
	return hops
}

// AppendIndexPath appends the dense AS indices of the path from dense
// source index srcIdx to the origin (inclusive) to buf and returns it,
// reporting whether the source is reachable. With a reused buf this is the
// zero-alloc hot path the traffic matrix routes flows through.
func (r *RIB) AppendIndexPath(buf []int32, srcIdx int) ([]int32, bool) {
	if r.Type[srcIdx] == Unreachable {
		return buf, false
	}
	i := srcIdx
	base := len(buf)
	buf = append(buf, int32(i))
	for r.Type[i] != Origin {
		i = int(r.NextHop[i])
		buf = append(buf, int32(i))
		if len(buf)-base > len(r.NextHop) {
			panic("bgp: next-hop cycle")
		}
	}
	return buf, true
}

// HopsFrom returns the AS-path length in hops (0 = src is the origin), or
// -1 if unreachable.
func (r *RIB) HopsFrom(src topology.ASN) int {
	i, ok := r.top.Index(src)
	if !ok || r.Type[i] == Unreachable {
		return -1
	}
	return int(r.PathLen[i])
}

// AllPaths holds RIBs for every origin in a topology.
type AllPaths struct {
	top  *topology.Topology
	ribs []*RIB // by dense origin index
}

// ComputeAll computes RIBs for every origin, in parallel. Origins are
// claimed with an atomic counter (parallel.ForEach) rather than a channel:
// the per-origin work on small topologies is short enough that channel
// sends were a measurable share of the sweep.
func ComputeAll(top *topology.Topology) *AllPaths {
	asns := top.ASNs()
	top.LinkIndex() // build once before fan-out; lazy build is not thread-safe
	sp := obs.StartSpan("bgp.compute_all", 0).SetAttrInt("origins", int64(len(asns)))
	reuseBase := scratchReuses.Load()
	ap := &AllPaths{top: top, ribs: make([]*RIB, len(asns))}
	parallel.ForEach(len(asns), 0, func(i int) {
		ap.ribs[i] = ComputeRIB(top, asns[i])
	})
	obs.Metrics().VolatileCounter("itm_bgp_scratch_reuses_total",
		"ComputeRIB scratch allocations avoided via pooling (volatile: pool retention is GC/scheduler dependent).").
		Add(scratchReuses.Load() - reuseBase)
	sp.End(0)
	return ap
}

// RIBFor returns the RIB toward the given origin, or nil if unknown.
func (ap *AllPaths) RIBFor(origin topology.ASN) *RIB {
	i, ok := ap.top.Index(origin)
	if !ok {
		return nil
	}
	return ap.ribs[i]
}

// Path returns the AS path src→dst, or nil if unreachable.
func (ap *AllPaths) Path(src, dst topology.ASN) []topology.ASN {
	r := ap.RIBFor(dst)
	if r == nil {
		return nil
	}
	return r.PathFrom(src)
}

// Hops returns the AS-path length src→dst in hops, or -1.
func (ap *AllPaths) Hops(src, dst topology.ASN) int {
	r := ap.RIBFor(dst)
	if r == nil {
		return -1
	}
	return r.HopsFrom(src)
}

// Topology returns the topology these paths were computed on.
func (ap *AllPaths) Topology() *topology.Topology { return ap.top }
