package bgp

import (
	"fmt"
	"io"
	"net/netip"

	"itmap/internal/mrt"
	"itmap/internal/topology"
)

// ExportMRT writes the collector's full view as a TABLE_DUMP_V2 dump: for
// every origin AS's first announced prefix, one RIB record carrying each
// collector peer's AS path — the artifact RouteViews/RIS actually publish.
func (c *Collector) ExportMRT(w io.Writer, ap *AllPaths, timestamp uint32) error {
	top := ap.Topology()
	wr := mrt.NewWriter(w, timestamp)
	peers := make([]mrt.Peer, len(c.Peers))
	for i, asn := range c.Peers {
		a := top.ASes[asn]
		if a == nil || len(a.Prefixes) == 0 {
			return fmt.Errorf("bgp: collector peer %d has no address", asn)
		}
		peers[i] = mrt.Peer{ASN: uint32(asn), Addr: a.Prefixes[0].Addr(179)}
	}
	if err := wr.WritePeerIndexTable(1, "itmap-collector", peers); err != nil {
		return err
	}
	for _, origin := range top.ASNs() {
		oa := top.ASes[origin]
		if len(oa.Prefixes) == 0 {
			continue
		}
		rib := ap.RIBFor(origin)
		var entries []mrt.RIBEntry
		for i, peer := range c.Peers {
			path := rib.PathFrom(peer)
			if path == nil {
				continue
			}
			asPath := make([]uint32, len(path))
			for j, asn := range path {
				asPath[j] = uint32(asn)
			}
			entries = append(entries, mrt.RIBEntry{
				PeerIndex:    uint16(i),
				ASPath:       asPath,
				OriginatedAt: timestamp,
			})
		}
		if len(entries) == 0 {
			continue
		}
		prefix := netip.PrefixFrom(oa.Prefixes[0].Addr(0), 24)
		if err := wr.WriteRIB(prefix, entries); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// ObservedLinksFromDump reconstructs the public link set from a parsed MRT
// dump — what a researcher does with downloaded collector data.
func ObservedLinksFromDump(d *mrt.Dump) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	for _, rib := range d.RIBs {
		for _, e := range rib.Entries {
			for i := 0; i+1 < len(e.ASPath); i++ {
				a := topology.ASN(e.ASPath[i])
				b := topology.ASN(e.ASPath[i+1])
				if a != b {
					links[topology.MakeLinkKey(a, b)] = true
				}
			}
		}
	}
	return links
}
