package bgp

import (
	"sort"

	"itmap/internal/randx"
	"itmap/internal/topology"
)

// Collector models a public BGP route collector (RouteViews/RIS-like): a set
// of vantage ASes export their full best-route tables to it. The union of
// AS-level links appearing on those paths is the "public topology" — which,
// as the paper's §3.3.1 stresses, misses most peering links of large content
// providers.
type Collector struct {
	// Peers are the ASes feeding the collector.
	Peers []topology.ASN
}

// DefaultCollectorPeers picks a realistic vantage set: every tier-1, about
// half of transit ASes, and a sprinkling of eyeball and academic networks.
// Real collectors are exactly this transit-biased.
func DefaultCollectorPeers(top *topology.Topology, rng *randx.Source) []topology.ASN {
	var peers []topology.ASN
	peers = append(peers, top.ASesOfType(topology.Tier1)...)
	for _, asn := range top.ASesOfType(topology.Transit) {
		if rng.Bool(0.5) {
			peers = append(peers, asn)
		}
	}
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		if rng.Bool(0.03) {
			peers = append(peers, asn)
		}
	}
	for _, asn := range top.ASesOfType(topology.Academic) {
		if rng.Bool(0.25) {
			peers = append(peers, asn)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// ObservedLinks returns every undirected AS link appearing on any path from
// a collector peer to any origin, under the given (ground-truth) routing.
func (c *Collector) ObservedLinks(ap *AllPaths) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	top := ap.Topology()
	for _, origin := range top.ASNs() {
		rib := ap.RIBFor(origin)
		for _, p := range c.Peers {
			path := rib.PathFrom(p)
			for i := 0; i+1 < len(path); i++ {
				links[topology.MakeLinkKey(path[i], path[i+1])] = true
			}
		}
	}
	return links
}

// ObservedTopology builds the public-view topology induced by the
// collector's observed links.
func (c *Collector) ObservedTopology(ap *AllPaths) *topology.Topology {
	return ap.Topology().SubgraphWithLinks(c.ObservedLinks(ap))
}

// LinkVisibility summarizes how much of the true topology a link set covers,
// overall and for the peering links of giant (hypergiant/cloud) ASes — the
// paper's ">90% of peerings invisible" phenomenon.
type LinkVisibility struct {
	TotalLinks        int
	VisibleLinks      int
	GiantPeerings     int
	VisibleGiantPeers int
}

// FracVisible returns the overall fraction of links observed.
func (v LinkVisibility) FracVisible() float64 {
	if v.TotalLinks == 0 {
		return 0
	}
	return float64(v.VisibleLinks) / float64(v.TotalLinks)
}

// FracGiantPeeringsVisible returns the fraction of hypergiant/cloud peering
// links observed.
func (v LinkVisibility) FracGiantPeeringsVisible() float64 {
	if v.GiantPeerings == 0 {
		return 0
	}
	return float64(v.VisibleGiantPeers) / float64(v.GiantPeerings)
}

// MeasureVisibility compares an observed link set against the truth.
func MeasureVisibility(top *topology.Topology, observed map[topology.LinkKey]bool) LinkVisibility {
	var v LinkVisibility
	for _, l := range top.Links() {
		v.TotalLinks++
		vis := observed[topology.MakeLinkKey(l.A, l.B)]
		if vis {
			v.VisibleLinks++
		}
		ta, tb := top.ASes[l.A].Type, top.ASes[l.B].Type
		giant := ta == topology.Hypergiant || ta == topology.Cloud ||
			tb == topology.Hypergiant || tb == topology.Cloud
		eyeballSide := ta == topology.Eyeball || tb == topology.Eyeball ||
			ta == topology.Transit || tb == topology.Transit
		if giant && eyeballSide && l.RelAB == topology.RelPeer {
			v.GiantPeerings++
			if vis {
				v.VisibleGiantPeers++
			}
		}
	}
	return v
}
