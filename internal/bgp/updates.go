package bgp

import (
	"io"
	"net/netip"

	"itmap/internal/mrt"
	"itmap/internal/topology"
)

// Update-stream support: after a routing event, each collector peer sends
// UPDATEs for the prefixes whose best path changed — withdrawals where the
// destination became unreachable, announcements carrying the new AS path.
// This is the realistic post-event signal (§2.1's "where the prefixes may
// be routed instead" becomes observable within minutes on RouteViews).

// ComputeUpdates diffs two routing states from the collector's vantage and
// returns the per-peer UPDATE stream the event would produce.
func (c *Collector) ComputeUpdates(before, after *AllPaths) []mrt.Update {
	top := before.Topology()
	var out []mrt.Update
	for _, peer := range c.Peers {
		peerAddr := netip.AddrFrom4([4]byte{0, 0, 0, 0})
		if a := top.ASes[peer]; a != nil && len(a.Prefixes) > 0 {
			peerAddr = a.Prefixes[0].Addr(179)
		}
		var withdrawn []netip.Prefix
		type ann struct {
			prefix netip.Prefix
			path   []uint32
		}
		var announces []ann
		for _, origin := range top.ASNs() {
			oa := top.ASes[origin]
			if len(oa.Prefixes) == 0 {
				continue
			}
			prefix := netip.PrefixFrom(oa.Prefixes[0].Addr(0), 24)
			oldPath := before.Path(peer, origin)
			newPath := after.Path(peer, origin)
			switch {
			case newPath == nil && oldPath != nil:
				withdrawn = append(withdrawn, prefix)
			case newPath != nil && !samePath(oldPath, newPath):
				asPath := make([]uint32, len(newPath))
				for i, asn := range newPath {
					asPath[i] = uint32(asn)
				}
				announces = append(announces, ann{prefix, asPath})
			}
		}
		if len(withdrawn) > 0 {
			out = append(out, mrt.Update{
				PeerASN: uint32(peer), PeerAddr: peerAddr, Withdrawn: withdrawn,
			})
		}
		for _, a := range announces {
			out = append(out, mrt.Update{
				PeerASN: uint32(peer), PeerAddr: peerAddr,
				Announced: []netip.Prefix{a.prefix}, ASPath: a.path,
			})
		}
	}
	return out
}

func samePath(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExportUpdatesMRT writes the update stream as BGP4MP records.
func ExportUpdatesMRT(w io.Writer, updates []mrt.Update, timestamp uint32) error {
	wr := mrt.NewWriter(w, timestamp)
	for _, u := range updates {
		if err := wr.WriteUpdate(u); err != nil {
			return err
		}
	}
	return wr.Flush()
}

// LinksFromUpdates extracts the AS adjacencies visible on announced paths —
// the fresh links a post-event crawl of the update stream reveals.
func LinksFromUpdates(updates []mrt.Update) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	for _, u := range updates {
		for i := 0; i+1 < len(u.ASPath); i++ {
			a := topology.ASN(u.ASPath[i])
			b := topology.ASN(u.ASPath[i+1])
			if a != b {
				links[topology.MakeLinkKey(a, b)] = true
			}
		}
	}
	return links
}
