package analysis

// oncefill protects the single-flight pattern: a struct's fields that are
// filled inside a sync.Once.Do closure (the response cache's body/ctype/
// err) are written exactly once, and every reader relies on Once's
// happens-before edge. A write to such a field anywhere outside a Do
// closure bypasses that synchronization, so it is flagged. Constructors
// remain free to initialize fields of a value they just allocated — the
// freshness escape covers writes to provably unshared values.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var OnceFill = &Analyzer{
	Name: "oncefill",
	Doc: "flag writes outside sync.Once.Do to fields that are filled " +
		"inside a Do closure (single-flight results are write-once)",
	Run: runOnceFill,
}

func runOnceFill(p *Pass) {
	fills, sanctioned := p.collectOnceFills()
	if len(fills) == 0 {
		return
	}
	for _, fn := range p.flowFuncs() {
		if fn.lit != nil && insideSanctioned(sanctioned, fn.lit.Pos()) {
			continue
		}
		ff := newFuncFlow(p, fn.body, nil)
		ff.walk(func(n ast.Node, st *flowState) {
			writes := make(map[*ast.SelectorExpr]bool)
			collectWriteTargets(n, writes)
			shallowWalk(n, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok || !writes[sel] {
					return true
				}
				obj := p.ObjectOf(sel.Sel)
				fillPos, isFill := fills[obj]
				if !isFill {
					return true
				}
				if base, ok := p.pathOf(sel.X); ok && st.fresh[base.root] {
					return true
				}
				at := p.Pkg.Fset.Position(fillPos)
				p.Reportf(sel.Pos(), "%s is filled inside sync.Once.Do (%s:%d) and may not be written outside it",
					sel.Sel.Name, shortBase(at.Filename), at.Line)
				return true
			})
		})
	}
}

// collectOnceFills finds every once.Do(func(){...}) call in the package
// (sync.Once receivers only) and records which struct fields the closure
// assigns: those are the write-once fields. The closures themselves (and
// anything nested in them) are sanctioned regions.
func (p *Pass) collectOnceFills() (map[types.Object]token.Pos, []*ast.FuncLit) {
	fills := make(map[types.Object]token.Pos)
	var sanctioned []*ast.FuncLit
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Name() != "Do" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		lit, ok := unparen(call.Args[0]).(*ast.FuncLit)
		if !ok {
			return true
		}
		sanctioned = append(sanctioned, lit)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			writes := make(map[*ast.SelectorExpr]bool)
			switch x := m.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					markSelectors(lhs, writes)
				}
			case *ast.IncDecStmt:
				markSelectors(x.X, writes)
			}
			for wsel := range writes {
				if obj := p.ObjectOf(wsel.Sel); obj != nil && isStructField(obj) {
					if _, seen := fills[obj]; !seen || lit.Pos() < fills[obj] {
						fills[obj] = lit.Pos()
					}
				}
			}
			return true
		})
		return true
	})
	return fills, sanctioned
}

// markSelectors records every selector inside a write target expression.
func markSelectors(e ast.Expr, writes map[*ast.SelectorExpr]bool) {
	ast.Inspect(e, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}

func isStructField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

func insideSanctioned(sanctioned []*ast.FuncLit, pos token.Pos) bool {
	for _, lit := range sanctioned {
		if pos >= lit.Pos() && pos < lit.End() {
			return true
		}
	}
	return false
}

// shortBase trims a path to its final element for compact diagnostics.
func shortBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == '\\' {
			return path[i+1:]
		}
	}
	return path
}
