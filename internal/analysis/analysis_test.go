package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// shared caches one Loader across tests: the slow part is source-importing
// the standard library, which only has to happen once.
var shared *Loader

func testLoader(t *testing.T) *Loader {
	t.Helper()
	if shared == nil {
		root, err := FindModuleRoot(".")
		if err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		shared = l
	}
	return shared
}

// runCase loads testdata/src/<name>, optionally overrides its package path
// (to exercise path-scoped analyzers), runs the given analyzers, and
// returns the diagnostics with filenames reduced to their base name.
func runCase(t *testing.T, name, pkgPathOverride string, analyzers []*Analyzer) []string {
	t.Helper()
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Errs) > 0 {
		t.Fatalf("fixture %s has load errors: %v", name, pkg.Errs)
	}
	// The loader caches packages, so restore the real path afterwards:
	// tests may run the same fixture with and without an override.
	origPath := pkg.PkgPath
	if pkgPathOverride != "" {
		pkg.PkgPath = pkgPathOverride
	}
	defer func() { pkg.PkgPath = origPath }()
	var lines []string
	for _, d := range Run(pkg, analyzers) {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		lines = append(lines, d.String())
	}
	return lines
}

func checkGolden(t *testing.T, name string, lines []string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	got := strings.Join(lines, "\n")
	if got != "" {
		got += "\n"
	}
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestNoDetermGolden(t *testing.T) {
	checkGolden(t, "nodeterm", runCase(t, "nodeterm", "", All()))
}

// TestNoDetermAllowlist proves the seeded substrates themselves are exempt:
// the same banned calls produce nothing when the package path says randx.
func TestNoDetermAllowlist(t *testing.T) {
	lines := runCase(t, "nodetermok", "itmap/internal/randx", All())
	if len(lines) != 0 {
		t.Errorf("allowlisted package produced diagnostics:\n%s", strings.Join(lines, "\n"))
	}
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, "maporder", runCase(t, "maporder", "", All()))
}

func TestFloatFoldGolden(t *testing.T) {
	checkGolden(t, "floatfold", runCase(t, "floatfold", "", All()))
}

func TestErrDropGolden(t *testing.T) {
	checkGolden(t, "errdrop", runCase(t, "errdrop", "itmap/internal/measure/fixture", All()))
}

// TestErrDropOutOfScope proves errdrop keeps to its patrol area: identical
// violations outside internal/measure and internal/core are not reported.
func TestErrDropOutOfScope(t *testing.T) {
	lines := runCase(t, "errdropout", "", All())
	if len(lines) != 0 {
		t.Errorf("out-of-scope package produced diagnostics:\n%s", strings.Join(lines, "\n"))
	}
}

func TestSeedFlowGolden(t *testing.T) {
	checkGolden(t, "seedflow", runCase(t, "seedflow", "", All()))
}

// TestSuppressGolden pins the whole //itmlint:allow contract in one golden:
// the allow silences exactly the named analyzer (floatfold) on exactly one
// line while the co-located nodeterm finding survives; a stale allow, a
// malformed allow, and an unknown-analyzer allow are each reported.
func TestSuppressGolden(t *testing.T) {
	lines := runCase(t, "suppress", "", All())
	for _, l := range lines {
		if strings.Contains(l, " floatfold: ") {
			t.Errorf("allow failed to silence floatfold: %s", l)
		}
	}
	checkGolden(t, "suppress", lines)
}

func TestLockGuardGolden(t *testing.T) {
	checkGolden(t, "lockguard", runCase(t, "lockguard", "", All()))
}

func TestPubFreezeGolden(t *testing.T) {
	checkGolden(t, "pubfreeze", runCase(t, "pubfreeze", "", All()))
}

func TestOnceFillGolden(t *testing.T) {
	checkGolden(t, "oncefill", runCase(t, "oncefill", "", All()))
}

// TestSyncAckGolden overrides the fixture's package path: syncack patrols
// only internal/mapstore/wal, and the structural file-shape check must
// fire on a journal type it has never imported.
func TestSyncAckGolden(t *testing.T) {
	checkGolden(t, "syncack", runCase(t, "syncack", "itmap/internal/mapstore/wal", All()))
}

// TestSyncAckOutOfScope proves the same fixture is silent under its real
// (testdata) package path: durability rules do not leak out of the WAL.
// (The fixture's syncack allow correctly turns stale here — the analyzer
// ran and produced nothing — so only real syncack diagnostics count as
// leaks.)
func TestSyncAckOutOfScope(t *testing.T) {
	for _, l := range runCase(t, "syncack", "", All()) {
		if strings.Contains(l, "ack only after fsync") {
			t.Errorf("out-of-scope package produced a syncack diagnostic: %s", l)
		}
	}
}

// TestGo122Golden proves the loader, CFG, and dataflow handle modern
// syntax — range-over-int, generics, method values — and that the one
// planted violation inside a range-over-int body is still found.
func TestGo122Golden(t *testing.T) {
	checkGolden(t, "go122", runCase(t, "go122", "", All()))
}

// TestPartialRunIgnoresForeignAllows proves a single-analyzer run does not
// judge allows belonging to analyzers that did not run: the fixture's
// //itmlint:allow nodeterm must not be reported stale when only floatfold
// runs.
func TestPartialRunIgnoresForeignAllows(t *testing.T) {
	lines := runCase(t, "suppress", "", []*Analyzer{FloatFold})
	for _, l := range lines {
		if strings.Contains(l, "stale //itmlint:allow nodeterm") {
			t.Errorf("partial run reported a foreign allow as stale: %s", l)
		}
	}
}
