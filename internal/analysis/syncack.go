package analysis

// syncack enforces the WAL's durability contract (DESIGN.md §12): once a
// function in internal/mapstore/wal writes to the journal, it may not
// return a nil error until the write has been fsynced. A nil return is
// the ack the caller treats as "this record survives a crash" — acking
// bytes that only reached the page cache silently breaks crash recovery.
// The check is a reachability question on the CFG: from every
// journal-write node, does any path reach a `return ..., nil` without
// passing a Sync() call first? Error-path returns (non-nil) are free to
// skip the sync — the caller is told the record is not durable.
//
// "Journal" means any value satisfying the write-and-sync shape
// (Write([]byte) (int, error) + Sync() error), built structurally so the
// analyzer needs no import of the wal package itself.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var SyncAck = &Analyzer{
	Name: "syncack",
	Doc: "in internal/mapstore/wal, every path from a journal write to a " +
		"nil-error return must pass through Sync (fsync-before-ack)",
	Run: runSyncAck,
}

// syncAckScope limits the analyzer to the WAL package (and its testdata
// mirrors in other modules).
const syncAckScope = "internal/mapstore/wal"

func runSyncAck(p *Pass) {
	if !strings.HasSuffix(p.Pkg.PkgPath, syncAckScope) {
		return
	}
	fileLike := fileLikeType()
	for _, fn := range p.flowFuncs() {
		var results *ast.FieldList
		if fn.decl != nil {
			results = fn.decl.Type.Results
		} else {
			results = fn.lit.Type.Results
		}
		if !lastResultIsError(p, results) {
			continue
		}
		p.checkSyncAck(fn.body, fileLike)
	}
}

// nodeKind classifies CFG nodes for the reachability walk.
type nodeKind int

const (
	nodePlain nodeKind = iota
	nodeWrite           // journal write: starts the obligation
	nodeSync            // fsync: discharges it
	nodeNilReturn       // nil-error return: must not be reached un-synced
)

func (p *Pass) checkSyncAck(body *ast.BlockStmt, fileLike *types.Interface) {
	cfg := BuildCFG(body)
	kinds := make([][]nodeKind, len(cfg.Blocks))
	hasWrite := false
	for _, b := range cfg.Blocks {
		kinds[b.Index] = make([]nodeKind, len(b.Nodes))
		for i, n := range b.Nodes {
			k := p.classifySyncNode(n, fileLike)
			kinds[b.Index][i] = k
			if k == nodeWrite {
				hasWrite = true
			}
		}
	}
	if !hasWrite {
		return
	}

	// offending maps each reachable un-synced nil return to the position
	// of the first journal write that reaches it (first in block order,
	// for deterministic messages).
	offending := make(map[ast.Node]token.Pos)
	order := make([]ast.Node, 0, 4)
	for _, b := range cfg.Blocks {
		for i, n := range b.Nodes {
			if kinds[b.Index][i] != nodeWrite {
				continue
			}
			visited := make(map[int]bool)
			reach(cfg, kinds, b, i+1, visited, func(ret ast.Node) {
				if _, seen := offending[ret]; !seen {
					offending[ret] = n.Pos()
					order = append(order, ret)
				}
			})
		}
	}
	for _, ret := range order {
		at := p.Pkg.Fset.Position(offending[ret])
		p.Reportf(ret.Pos(), "nil-error return reachable from the journal write at line %d without an intervening Sync; ack only after fsync", at.Line)
	}
}

// reach walks forward from block b starting at node index start,
// reporting every nil-error return reached before a Sync node.
func reach(cfg *CFG, kinds [][]nodeKind, b *Block, start int, visited map[int]bool, report func(ast.Node)) {
	for i := start; i < len(b.Nodes); i++ {
		switch kinds[b.Index][i] {
		case nodeSync:
			return
		case nodeNilReturn:
			report(b.Nodes[i])
		}
	}
	for _, succ := range b.Succs {
		if visited[succ.Index] {
			continue
		}
		visited[succ.Index] = true
		reach(cfg, kinds, succ, 0, visited, report)
	}
}

// classifySyncNode decides what one CFG node means to the durability
// walk. A node both writing and returning cannot occur (a ReturnStmt is
// its own node), but a node may contain both a Write and a Sync call —
// classify by the *last* relevant call so `w.Write(b); w.Sync()` fused
// into one statement behaves correctly.
func (p *Pass) classifySyncNode(n ast.Node, fileLike *types.Interface) nodeKind {
	if ret, ok := n.(*ast.ReturnStmt); ok {
		if len(ret.Results) > 0 && isNilIdent(p, ret.Results[len(ret.Results)-1]) {
			return nodeNilReturn
		}
		return nodePlain
	}
	kind := nodePlain
	shallowWalk(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := p.TypeOf(sel.X)
		if recv == nil {
			return true
		}
		if !types.Implements(recv, fileLike) && !types.Implements(types.NewPointer(recv), fileLike) {
			return true
		}
		switch sel.Sel.Name {
		case "Write":
			kind = nodeWrite
		case "Sync":
			kind = nodeSync
		}
		return true
	})
	return kind
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.ObjectOf(id).(*types.Nil)
	return isNil
}

// lastResultIsError reports whether the function's final result is the
// built-in error type — the ack channel syncack cares about.
func lastResultIsError(p *Pass, results *ast.FieldList) bool {
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := results.List[len(results.List)-1]
	t := p.TypeOf(last.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// fileLikeType builds the journal shape from first principles: anything
// with Write([]byte) (int, error) and Sync() error.
func fileLikeType() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	writeSig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType),
		), false)
	syncSig := types.NewSignatureType(nil, nil, nil, types.NewTuple(), types.NewTuple(
		types.NewVar(token.NoPos, nil, "err", errType),
	), false)
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", writeSig),
		types.NewFunc(token.NoPos, nil, "Sync", syncSig),
	}, nil)
	iface.Complete()
	return iface
}
