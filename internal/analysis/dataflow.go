package analysis

// dataflow.go is the intraprocedural engine under the v2 analyzers
// (lockguard, pubfreeze, oncefill). It runs one combined forward
// analysis over a function's CFG, tracking three facts per program point:
//
//   - lock-set: which mutexes (identified by rendered path, "s.mu" or
//     "f.mem.mu") are provably held, and whether exclusively or shared.
//     Merge is intersection — a lock counts only if held on every path.
//     A deferred Unlock releases at return, so it does not kill the lock.
//
//   - freshness: which local variables provably hold an allocation this
//     function created and has not yet shared (reaching definitions are
//     all &T{}/T{}/new/make and the value has not escaped via a call
//     argument, composite literal, closure capture, channel send, or a
//     store through another object). Fresh values are exempt from guard
//     checks: constructors may fill fields before the first share.
//
//   - published-set: which locals were handed to an atomic.Pointer
//     Store/Swap/CompareAndSwap — shared with concurrent readers, so any
//     later write through them is a data race. Merge is union, and plain
//     pointer copies (x := y) propagate publication both directions.
//
// The lattices are finite and the transfer functions monotone, so the
// worklist converges. Analyzers replay the solution with walk(), which
// hands them the state in effect immediately before each node runs.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pathKey names an lvalue chain of identifiers: the root object plus the
// rendered path ("w.mu", "f.mem.mu"). Parens and derefs are transparent,
// so (*w).mu and w.mu coincide.
type pathKey struct {
	root types.Object
	path string
}

// pathOf renders e as a pathKey if it is an identifier/selector chain.
func (p *Pass) pathOf(e ast.Expr) (pathKey, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.ObjectOf(x); obj != nil {
			return pathKey{root: obj, path: x.Name}, true
		}
	case *ast.SelectorExpr:
		if base, ok := p.pathOf(x.X); ok {
			return pathKey{root: base.root, path: base.path + "." + x.Sel.Name}, true
		}
	case *ast.ParenExpr:
		return p.pathOf(x.X)
	case *ast.StarExpr:
		return p.pathOf(x.X)
	}
	return pathKey{}, false
}

// lockMode distinguishes shared (RLock) from exclusive (Lock) holds.
// Reads are safe under either; writes require exclusive.
type lockMode int

const (
	lockShared lockMode = iota + 1
	lockExclusive
)

// flowState is the dataflow fact set at one program point. A nil
// *flowState is TOP: the not-yet-reached state, identity for meet.
type flowState struct {
	locks map[pathKey]lockMode
	fresh map[types.Object]bool
	pub   map[types.Object]bool
}

func newState() *flowState {
	return &flowState{
		locks: make(map[pathKey]lockMode),
		fresh: make(map[types.Object]bool),
		pub:   make(map[types.Object]bool),
	}
}

func (s *flowState) clone() *flowState {
	c := &flowState{
		locks: make(map[pathKey]lockMode, len(s.locks)),
		fresh: make(map[types.Object]bool, len(s.fresh)),
		pub:   make(map[types.Object]bool, len(s.pub)),
	}
	for k, v := range s.locks {
		c.locks[k] = v
	}
	for o := range s.fresh {
		c.fresh[o] = true
	}
	for o := range s.pub {
		c.pub[o] = true
	}
	return c
}

// meet joins two predecessor out-states: locks and freshness intersect
// (with RLock∧Lock = RLock), publication unions.
func meet(a, b *flowState) *flowState {
	if a == nil {
		return b.clone()
	}
	out := &flowState{
		locks: make(map[pathKey]lockMode),
		fresh: make(map[types.Object]bool),
		pub:   make(map[types.Object]bool, len(a.pub)+len(b.pub)),
	}
	for k, m := range a.locks {
		if m2, ok := b.locks[k]; ok {
			if m2 < m {
				m = m2
			}
			out.locks[k] = m
		}
	}
	for o := range a.fresh {
		if b.fresh[o] {
			out.fresh[o] = true
		}
	}
	for o := range a.pub {
		out.pub[o] = true
	}
	for o := range b.pub {
		out.pub[o] = true
	}
	return out
}

func statesEqual(a, b *flowState) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.locks) != len(b.locks) || len(a.fresh) != len(b.fresh) || len(a.pub) != len(b.pub) {
		return false
	}
	for k, v := range a.locks {
		if b.locks[k] != v {
			return false
		}
	}
	for o := range a.fresh {
		if !b.fresh[o] {
			return false
		}
	}
	for o := range a.pub {
		if !b.pub[o] {
			return false
		}
	}
	return true
}

// aliasSets is a flow-insensitive union-find over pointer-typed locals
// that are plain copies of one another (y := x). Publishing any member
// publishes the whole class — every copy points at the same allocation.
// Value (non-pointer) copies are excluded: writing a struct copy does not
// mutate the published original.
type aliasSets struct {
	parent map[types.Object]types.Object
}

func buildAliases(p *Pass, body *ast.BlockStmt) *aliasSets {
	a := &aliasSets{parent: make(map[types.Object]types.Object)}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			dst, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			src, ok := unparen(as.Rhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			dobj, sobj := p.ObjectOf(dst), p.ObjectOf(src)
			if dobj == nil || sobj == nil || !isPointerVar(dobj) || !isPointerVar(sobj) {
				continue
			}
			a.union(dobj, sobj)
		}
		return true
	})
	return a
}

func isPointerVar(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok {
		return false
	}
	_, ok = v.Type().Underlying().(*types.Pointer)
	return ok
}

func (a *aliasSets) find(o types.Object) types.Object {
	for {
		p, ok := a.parent[o]
		if !ok || p == o {
			return o
		}
		o = p
	}
}

func (a *aliasSets) union(x, y types.Object) {
	rx, ry := a.find(x), a.find(y)
	if rx != ry {
		a.parent[rx] = ry
	}
}

// each calls fn for every member of o's alias class, o included. Order
// is unspecified — callers only set per-object flags.
func (a *aliasSets) each(o types.Object, fn func(types.Object)) {
	rep := a.find(o)
	fn(o)
	if rep != o {
		fn(rep)
	}
	for k := range a.parent {
		if k != o && k != rep && a.find(k) == rep {
			fn(k)
		}
	}
}

// funcFlow is the solved dataflow of one function body.
type funcFlow struct {
	p       *Pass
	cfg     *CFG
	in      []*flowState // block-entry states; nil = unreachable
	aliases *aliasSets
}

// newFuncFlow builds the CFG for body, seeds the entry with initLocks
// (from //itm:locked annotations; nil for none), and solves to fixpoint.
func newFuncFlow(p *Pass, body *ast.BlockStmt, initLocks map[pathKey]lockMode) *funcFlow {
	ff := &funcFlow{p: p, cfg: BuildCFG(body), aliases: buildAliases(p, body)}
	n := len(ff.cfg.Blocks)
	ff.in = make([]*flowState, n)
	entry := newState()
	for k, m := range initLocks {
		entry.locks[k] = m
	}
	ff.in[0] = entry

	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	for len(work) > 0 {
		idx := work[0]
		work = work[1:]
		queued[idx] = false
		b := ff.cfg.Blocks[idx]
		st := ff.in[idx].clone()
		for _, node := range b.Nodes {
			ff.apply(st, node)
		}
		for _, succ := range b.Succs {
			merged := meet(ff.in[succ.Index], st)
			if !statesEqual(merged, ff.in[succ.Index]) {
				ff.in[succ.Index] = merged
				if !queued[succ.Index] {
					work = append(work, succ.Index)
					queued[succ.Index] = true
				}
			}
		}
	}
	return ff
}

// walk replays the solution in block order, calling visit with the state
// in effect immediately BEFORE each node executes. Unreachable blocks are
// skipped. The state passed to visit is live — do not retain it.
func (ff *funcFlow) walk(visit func(n ast.Node, st *flowState)) {
	for _, b := range ff.cfg.Blocks {
		if ff.in[b.Index] == nil {
			continue
		}
		st := ff.in[b.Index].clone()
		for _, n := range b.Nodes {
			visit(n, st)
			ff.apply(st, n)
		}
	}
}

// apply is the transfer function for one CFG node.
func (ff *funcFlow) apply(st *flowState, n ast.Node) {
	deferred := false
	scan := n
	if d, ok := n.(*ast.DeferStmt); ok {
		deferred = true
		scan = d.Call
	}

	// Expression effects: lock operations, atomic publication, escapes.
	shallowWalk(scan, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.CallExpr:
			if ff.applyLockOp(st, e, deferred) {
				return false
			}
			if ff.applyPublish(st, e) {
				return false
			}
			ff.applyCallEscapes(st, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				ff.killFreshExpr(st, e.X)
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				ff.killFreshExpr(st, v)
			}
		case *ast.FuncLit:
			ff.killCaptured(st, e)
		}
		return true
	})

	// Definition effects.
	switch x := n.(type) {
	case *ast.AssignStmt:
		ff.applyAssign(st, x)
	case *ast.DeclStmt:
		ff.applyDecl(st, x)
	case *ast.RangeStmt:
		for _, kv := range []ast.Expr{x.Key, x.Value} {
			if kv == nil {
				continue
			}
			if id, ok := unparen(kv).(*ast.Ident); ok {
				if obj := ff.p.ObjectOf(id); obj != nil {
					delete(st.fresh, obj)
					delete(st.pub, obj)
				}
			}
		}
	case *ast.SendStmt:
		ff.killFreshExpr(st, x.Value)
	}
}

// applyLockOp recognizes sync mutex method calls and updates the lock
// set. It reports true when e is such a call (so the receiver path is not
// mistaken for an escaping argument). Deferred unlocks release at return,
// not here, so under defer the call is recognized but changes nothing.
// TryLock's success is result-dependent, so it never adds to the set.
func (ff *funcFlow) applyLockOp(st *flowState, e *ast.CallExpr, deferred bool) bool {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := ff.p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return false
	}
	key, renderable := ff.p.pathOf(sel.X)
	if !renderable || deferred {
		return true
	}
	switch fn.Name() {
	case "Lock":
		st.locks[key] = lockExclusive
	case "RLock":
		if st.locks[key] < lockShared {
			st.locks[key] = lockShared
		}
	case "Unlock", "RUnlock":
		delete(st.locks, key)
	}
	return true
}

// applyPublish recognizes atomic.Pointer Store/Swap/CompareAndSwap and
// marks the stored value's alias class published (and no longer fresh).
func (ff *funcFlow) applyPublish(st *flowState, e *ast.CallExpr) bool {
	sel, ok := e.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := ff.p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if !isAtomicPointer(ff.p.TypeOf(sel.X)) {
		return false
	}
	var val ast.Expr
	switch fn.Name() {
	case "Store", "Swap":
		if len(e.Args) == 1 {
			val = e.Args[0]
		}
	case "CompareAndSwap":
		if len(e.Args) == 2 {
			val = e.Args[1]
		}
	default:
		return false
	}
	if val == nil {
		return true
	}
	if id, ok := unparen(val).(*ast.Ident); ok {
		if obj := ff.p.ObjectOf(id); obj != nil {
			ff.aliases.each(obj, func(m types.Object) {
				st.pub[m] = true
				delete(st.fresh, m)
			})
		}
	}
	return true
}

// isAtomicPointer reports whether t (or *t) is sync/atomic.Pointer[T] —
// and only Pointer: the scalar atomics (Uint64 etc.) hold no references.
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// applyCallEscapes kills freshness of bare-identifier arguments and
// method receivers: once a value is handed to another function it may be
// retained anywhere, so it is no longer provably unshared. len and cap
// only observe their argument, so they are exempt.
func (ff *funcFlow) applyCallEscapes(st *flowState, e *ast.CallExpr) {
	if id, ok := e.Fun.(*ast.Ident); ok {
		if b, ok := ff.p.ObjectOf(id).(*types.Builtin); ok {
			if b.Name() == "len" || b.Name() == "cap" {
				return
			}
		}
	}
	for _, arg := range e.Args {
		ff.killFreshExpr(st, arg)
	}
	if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
		ff.killFreshExpr(st, sel.X)
	}
}

// killFreshExpr clears freshness if e is a bare identifier.
func (ff *funcFlow) killFreshExpr(st *flowState, e ast.Expr) {
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := ff.p.ObjectOf(id); obj != nil {
			delete(st.fresh, obj)
		}
	}
}

// killCaptured clears freshness of every outside variable a function
// literal captures: the closure may share the value with anyone.
func (ff *funcFlow) killCaptured(st *flowState, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ff.p.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			delete(st.fresh, obj)
		}
		return true
	})
}

// applyAssign handles definitions: an allocation RHS makes the LHS fresh,
// an identifier RHS copies the source's fresh/published facts, anything
// else resets to unknown. A bare identifier stored through a non-
// identifier LHS (s.field = x, m[k] = x) escapes.
func (ff *funcFlow) applyAssign(st *flowState, as *ast.AssignStmt) {
	oneToOne := len(as.Lhs) == len(as.Rhs)
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if oneToOne {
			rhs = unparen(as.Rhs[i])
		}
		id, isIdent := unparen(lhs).(*ast.Ident)
		if !isIdent || id.Name == "_" {
			if rhs != nil {
				ff.killFreshExpr(st, rhs)
			}
			continue
		}
		obj := ff.p.ObjectOf(id)
		if obj == nil {
			continue
		}
		ff.define(st, obj, rhs)
	}
}

func (ff *funcFlow) applyDecl(st *flowState, ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := ff.p.ObjectOf(name)
			if obj == nil || name.Name == "_" {
				continue
			}
			var rhs ast.Expr
			if len(vs.Values) == len(vs.Names) {
				rhs = unparen(vs.Values[i])
			}
			ff.define(st, obj, rhs)
		}
	}
}

// define records the effect of "obj = rhs" on freshness and publication.
func (ff *funcFlow) define(st *flowState, obj types.Object, rhs ast.Expr) {
	if rhs != nil && isAllocExpr(ff.p, rhs) {
		st.fresh[obj] = true
		delete(st.pub, obj)
		return
	}
	if src, ok := rhs.(*ast.Ident); ok {
		if sobj := ff.p.ObjectOf(src); sobj != nil {
			if st.fresh[sobj] {
				st.fresh[obj] = true
			} else {
				delete(st.fresh, obj)
			}
			if st.pub[sobj] {
				st.pub[obj] = true
			} else {
				delete(st.pub, obj)
			}
			return
		}
	}
	delete(st.fresh, obj)
	delete(st.pub, obj)
}

// isAllocExpr reports whether e provably yields a brand-new, unshared
// value: &T{...}, T{...}, new(T), or make(...).
func isAllocExpr(p *Pass, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := p.ObjectOf(id).(*types.Builtin); ok {
				return b.Name() == "new" || b.Name() == "make"
			}
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// flowFunc is one analyzable function body: a declaration or a literal.
// Function literals get their own flow — the enclosing function's walk
// never descends into them.
type flowFunc struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
	file *ast.File
}

// flowFuncs enumerates every function body in the package in file order.
func (p *Pass) flowFuncs() []flowFunc {
	var out []flowFunc
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					out = append(out, flowFunc{decl: x, body: x.Body, file: f})
				}
			case *ast.FuncLit:
				out = append(out, flowFunc{lit: x, body: x.Body, file: f})
			}
			return true
		})
	}
	return out
}
