package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the enclosing module.
type Package struct {
	// PkgPath is the import path ("itmap/internal/traffic"). Tests may
	// override it before Run to exercise path-scoped analyzers.
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Errs holds type-check errors. Analyzers still run on a partially
	// checked package, but the driver reports load errors separately so a
	// broken tree is not mistaken for a lint-clean one.
	Errs []error
}

// Loader parses and type-checks module packages using only the standard
// library: go/parser for syntax, go/types for checking, and the source
// importer for standard-library dependencies. Module-internal imports are
// resolved against ModuleDir, so no GOPATH layout or external tooling
// (golang.org/x/tools) is needed.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	std     types.Importer
	byPath  map[string]*Package
	loading map[string]bool
}

// NewLoader builds a Loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  abs,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		byPath:     make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from source
// under ModuleDir; everything else (the standard library) goes through the
// compiler's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of one directory.
// Results are cached, so a package imported by many others is checked once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byPath[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	pkgPath := l.pkgPathFor(abs)
	pkg := &Package{
		PkgPath: pkgPath,
		Name:    files[0].Name.Name,
		Dir:     abs,
		Fset:    l.Fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	if err != nil && len(pkg.Errs) == 0 {
		pkg.Errs = append(pkg.Errs, err)
	}
	l.byPath[abs] = pkg
	return pkg, nil
}

func (l *Loader) pkgPathFor(absDir string) string {
	rel, err := filepath.Rel(l.ModuleDir, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(absDir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll walks the module tree and loads every buildable package,
// skipping testdata, hidden directories, and generated figure output.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (name == "testdata" || name == "figures" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
