package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold flags `+=`/`-=` on float accumulators inside map-range bodies.
// Float addition is not associative, so folding values in map-iteration
// order produces run-dependent low bits — exactly the kind of drift the
// byte-parity tests (deterministic left-fold merges) exist to prevent.
// Fold over sorted keys instead.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "flag += / -= on float accumulators inside map-range loops",
	Run:  runFloatFold,
}

func runFloatFold(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(p, rs) {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			stmt, ok := m.(*ast.AssignStmt)
			if !ok || (stmt.Tok != token.ADD_ASSIGN && stmt.Tok != token.SUB_ASSIGN) {
				return true
			}
			t := p.TypeOf(stmt.Lhs[0])
			if t == nil {
				return true
			}
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				if keyedByRangeKey(p, stmt.Lhs[0], rs) {
					// acc[k] += v with k the range key touches each
					// location once per pass — order cannot matter, and
					// this is the hot shard-merge shape, so no sort tax.
					return true
				}
				p.Reportf(stmt.Pos(), "float fold %s inside map iteration is order-dependent: iterate sorted keys", stmt.Tok)
			}
			return true
		})
		return true
	})
}

// keyedByRangeKey reports whether lhs is an index expression whose index is
// exactly the range statement's key variable.
func keyedByRangeKey(p *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	idxID, ok := idx.Index.(*ast.Ident)
	if !ok {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	obj := p.ObjectOf(idxID)
	return obj != nil && obj == p.ObjectOf(keyID)
}
