package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow flags construction of a fresh randx source inside a loop body.
// Re-seeding per iteration either correlates shards (same seed every pass)
// or silently decorrelates them from the parent stream; the sanctioned
// pattern is one parent source with per-shard Fork (or an explicit
// per-shard seed derived outside the loop).
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "forbid randx.New inside loop bodies; derive per-iteration sources with Fork",
	Run:  runSeedFlow,
}

func runSeedFlow(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Name() != "New" {
				return true
			}
			if strings.HasSuffix(fn.Pkg().Path(), "internal/randx") {
				p.Reportf(call.Pos(), "randx.New inside a loop re-seeds per iteration: fork a parent source outside the loop")
			}
			return true
		})
		return true
	})
}
