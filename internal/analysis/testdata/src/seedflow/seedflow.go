// Package seedflow exercises the seedflow analyzer: constructing a fresh
// randx source inside a loop is flagged; forking a parent source is not.
package seedflow

import "itmap/internal/randx"

// PerIteration re-seeds inside the loop body.
func PerIteration(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		rng := randx.New(int64(i))
		total += rng.Float64()
	}
	return total
}

// Forked derives per-shard streams the sanctioned way: one parent outside,
// Fork inside.
func Forked(n int) float64 {
	parent := randx.New(1)
	total := 0.0
	for i := 0; i < n; i++ {
		rng := parent.Fork()
		total += rng.Float64()
	}
	return total
}
