// Package go122 proves the loader, CFG, and dataflow layer handle modern
// syntax: range-over-int, generic functions and types, and method values
// capturing their receivers. The one guarded access inside the
// range-over-int body must still be caught — the CFG treats the new
// range form like any other loop head.
package go122

import "sync"

// Box is a generic container with a guarded field.
type Box[T any] struct {
	mu sync.Mutex
	//itm:guardedby mu
	val T
}

// Get locks around the generic field: clean.
func (b *Box[T]) Get() T {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.val
}

// Tally has a guarded counter poked from a range-over-int loop.
type Tally struct {
	mu sync.Mutex
	//itm:guardedby mu
	n int
}

// LockedSpin holds the lock across the range-over-int body: clean.
func (t *Tally) LockedSpin(rounds int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for range rounds {
		t.n++
	}
}

// RacySpin writes the guarded counter inside a range-over-int body with
// no lock: the CFG must reach into the new loop form.
func (t *Tally) RacySpin(rounds int) {
	for i := range rounds {
		t.n += i
	}
}

// clamp is a plain generic function: the loader must instantiate it
// without diagnostics.
func clamp[T int | int64 | float64](v, lo, hi T) T {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MethodValue binds a method value (capturing its receiver) and calls it
// through the binding — exercising SelectorExpr-as-value in the flow.
func MethodValue(t *Tally) int {
	get := t.locked
	total := 0
	for range 3 {
		total += get()
	}
	return clamp(total, 0, 100)
}

// locked reads under the lock: clean, even when called via a binding.
func (t *Tally) locked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
