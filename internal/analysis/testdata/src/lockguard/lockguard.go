// Package lockguard exercises the lockguard analyzer: //itm:guardedby
// fields must be accessed under their mutex (exclusively for writes),
// with escapes for provably fresh values and //itm:locked helpers, and
// reports for malformed annotations.
package lockguard

import "sync"

// Counter pairs a mutex with a guarded map.
type Counter struct {
	mu sync.Mutex
	//itm:guardedby mu
	n map[string]int
}

// NewCounter fills the guarded field lock-free: the value is fresh.
func NewCounter() *Counter {
	c := &Counter{n: map[string]int{}}
	c.n["boot"] = 1
	return c
}

// Add holds the lock across the write: clean.
func (c *Counter) Add(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n[k]++
}

// Racy writes without any lock.
func (c *Counter) Racy(k string) {
	c.n[k]++
}

// RacyRead reads without any lock.
func (c *Counter) RacyRead(k string) int {
	return c.n[k]
}

// EarlyUnlock releases before the access: the lock-set must notice.
func (c *Counter) EarlyUnlock(k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n[k]
}

// OneBranch locks on only one path; the merge loses the lock.
func (c *Counter) OneBranch(k string, lock bool) {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n[k] = 1
}

// Suppressed carries the repo's escape hatch on a deliberate violation.
func (c *Counter) Suppressed(k string) int {
	//itmlint:allow lockguard fixture: deliberate unlocked read
	return c.n[k]
}

// Gauge is guarded by an RWMutex: reads need either mode, writes need
// the exclusive Lock.
type Gauge struct {
	mu sync.RWMutex
	//itm:guardedby mu
	v float64
}

// Get reads under the shared lock: clean.
func (g *Gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// BumpShared writes under only the read lock.
func (g *Gauge) BumpShared() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.v++
}

// setLocked is checked as if g.mu were already held: callers own it.
//
//itm:locked mu
func (g *Gauge) setLocked(v float64) {
	g.v = v
}

// Set takes the exclusive lock and delegates to the annotated helper.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setLocked(v)
}

// badLocked names a mutex the receiver does not have.
//
//itm:locked lk
func (g *Gauge) badLocked(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
}

// Orphan's directive names a field that is not a mutex.
type Orphan struct {
	//itm:guardedby lock
	x int
}

// Twoargs's directive is malformed.
type Twoargs struct {
	mu sync.Mutex
	//itm:guardedby mu extra
	y int
}
