// Package syncack exercises the syncack analyzer (run with the package
// path overridden to land in internal/mapstore/wal): every path from a
// journal write to a nil-error return must pass Sync first. The journal
// shape is structural — anything with Write([]byte) (int, error) and
// Sync() error.
package syncack

type journal struct{ n int }

func (j *journal) Write(p []byte) (int, error) { j.n += len(p); return len(p), nil }
func (j *journal) Sync() error                 { return nil }

// AckWithoutSync acks a write that only reached the page cache.
func AckWithoutSync(j *journal, b []byte) error {
	if _, err := j.Write(b); err != nil {
		return err
	}
	return nil
}

// AckAfterSync is the contract done right.
func AckAfterSync(j *journal, b []byte) error {
	if _, err := j.Write(b); err != nil {
		return err
	}
	if err := j.Sync(); err != nil {
		return err
	}
	return nil
}

// ErrPathSkipsSync may skip the sync on error returns: the caller is
// told the record is not durable.
func ErrPathSkipsSync(j *journal, b []byte) error {
	if _, err := j.Write(b); err != nil {
		return err
	}
	return j.Sync()
}

// BranchLeak syncs on one path but acks early on the other.
func BranchLeak(j *journal, b []byte, fast bool) error {
	if _, err := j.Write(b); err != nil {
		return err
	}
	if fast {
		return nil
	}
	return j.Sync()
}

// NotAnAck returns no error, so there is no durability promise to break.
func NotAnAck(j *journal, b []byte) int {
	n, _ := j.Write(b)
	return n
}

// Suppressed carries the escape hatch on a deliberate violation.
func Suppressed(j *journal, b []byte) error {
	if _, err := j.Write(b); err != nil {
		return err
	}
	//itmlint:allow syncack fixture: recovery path replays the journal anyway
	return nil
}
