// Package floatfold exercises the floatfold analyzer: order-dependent float
// accumulation inside map ranges is flagged; integer folds and the keyed
// shard-merge shape are not.
package floatfold

// Fold accumulates floats in map-iteration order.
func Fold(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Shrink subtracts in map-iteration order.
func Shrink(m map[string]float64, start float64) float64 {
	for _, v := range m {
		start -= v
	}
	return start
}

// CountInts is fine: integer addition is associative.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MergeShard is the keyed hot-merge shape: dst[k] is written exactly once
// per pass, so iteration order cannot change any sum.
func MergeShard(dst, src map[uint32]float64) {
	for k, v := range src {
		dst[k] += v
	}
}
