// Package maporder exercises the maporder analyzer: map-iteration order
// leaking into slices, writers, or channels is flagged; the
// collect-then-sort idiom and loop-local slices are not.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Leak appends in map order with no later sort.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dump writes in map order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Build writes in map order through a strings.Builder method.
func Build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}

// Send leaks map order onto a channel.
func Send(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k
	}
}

// CollectThenSort is the sanctioned idiom: the append is unordered but the
// slice is sorted before anyone can observe it.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collector exercises the selector-chain append target (d.items).
type Collector struct{ items []string }

// Collect appends to a struct field and sorts it afterwards: sanctioned.
func (d *Collector) Collect(m map[string]int) {
	for k := range m {
		d.items = append(d.items, k)
	}
	sort.Strings(d.items)
}

// PerKey appends only to a slice declared inside the loop body, whose
// lifetime is one iteration: order cannot leak.
func PerKey(m map[string][]int) map[string]int {
	out := make(map[string]int)
	for k, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		out[k] = len(local)
	}
	return out
}
