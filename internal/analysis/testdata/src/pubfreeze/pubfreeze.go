// Package pubfreeze exercises the pubfreeze analyzer: once a pointer is
// stored into an atomic.Pointer it is shared with lock-free readers, so
// any later write through it (or a copy of it) is flagged; rebinding the
// variable and writes before the store pass.
package pubfreeze

import "sync/atomic"

type snapshot struct {
	counts map[string]int
	total  int
}

type holder struct {
	cur atomic.Pointer[snapshot]
}

// PublishThenMutate keeps writing through the pointer after Store.
func (h *holder) PublishThenMutate() {
	s := &snapshot{counts: map[string]int{}}
	s.counts["pre"] = 1
	h.cur.Store(s)
	s.total = 2
	s.counts["post"] = 3
	delete(s.counts, "pre")
	s.total++
}

// BuildThenPublish finishes every write before the store; the rebind
// afterwards forgets the published value, so the new object is free.
func (h *holder) BuildThenPublish() {
	s := &snapshot{counts: map[string]int{}}
	s.total = 1
	h.cur.Store(s)
	s = &snapshot{counts: map[string]int{}}
	s.total = 2
}

// Alias publishes via a copy and mutates via the original.
func (h *holder) Alias() {
	s := &snapshot{counts: map[string]int{}}
	t := s
	h.cur.Store(t)
	s.total = 1
}

// Swapped treats Swap's argument as published too.
func (h *holder) Swapped() {
	s := &snapshot{}
	h.cur.Swap(s)
	s.total = 1
}

// Suppressed carries the escape hatch on a deliberate violation.
func (h *holder) Suppressed() {
	s := &snapshot{}
	h.cur.Store(s)
	//itmlint:allow pubfreeze fixture: single-writer warm-up phase
	s.total = 1
}
