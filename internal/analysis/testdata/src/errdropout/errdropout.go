// Package errdropout duplicates the errdrop fixture's violations but is
// loaded with its natural (out-of-scope) package path: errdrop patrols only
// internal/measure/... and internal/core, so nothing here may be flagged.
package errdropout

import "strconv"

func parse(s string) (int, error) { return strconv.Atoi(s) }

func emit() error { return nil }

// Drop would be three findings inside the errdrop scope.
func Drop(s string) int {
	parse(s)
	v, _ := parse(s)
	defer emit()
	return v
}
