// Package nodeterm exercises the nodeterm analyzer: wall-clock reads and
// global math/rand use must be flagged; clock-free uses of package time and
// annotated bridges must not.
package nodeterm

import (
	"math/rand"
	"time"
)

// Bad reads the wall clock three ways and the global rand stream.
func Bad() (time.Time, float64, time.Duration) {
	now := time.Now()
	elapsed := time.Since(now)
	time.Sleep(time.Millisecond)
	return now, rand.Float64(), elapsed
}

// Suppressed carries a justified bridge annotation.
func Suppressed() time.Time {
	//itmlint:allow nodeterm fixture wall-clock bridge
	return time.Now()
}

// Good uses only the clock-free parts of package time.
func Good() time.Time {
	d := 3 * time.Second
	return time.Unix(0, int64(d))
}
