// Package oncefill exercises the oncefill analyzer: fields filled inside
// a sync.Once.Do closure are write-once, so writes anywhere else are
// flagged — except on a freshly allocated, not-yet-shared value.
package oncefill

import "sync"

type entry struct {
	once sync.Once
	body []byte
	err  error
	hits int
}

// fill computes the write-once result; the closure is the sanctioned
// region for body and err.
func (e *entry) fill(compute func() ([]byte, error)) {
	e.once.Do(func() {
		e.body, e.err = compute()
	})
}

// Hits is unrelated bookkeeping: hits is never filled in a Do closure,
// so writing it elsewhere is fine.
func (e *entry) Hits() int {
	e.hits++
	return e.hits
}

// Clobber rewrites the single-flight result outside the Do closure.
func (e *entry) Clobber() {
	e.body = nil
	e.err = nil
}

// newEntry pre-fills a fresh value: nobody can race with it yet.
func newEntry(body []byte) *entry {
	e := &entry{}
	e.body = body
	return e
}

// Suppressed carries the escape hatch on a deliberate violation.
func (e *entry) Suppressed() {
	//itmlint:allow oncefill fixture: test helper resets the entry
	e.body = nil
}
