// Package suppress exercises the //itmlint:allow machinery: an allow
// silences exactly the named analyzer on exactly one line, a stale allow is
// itself reported, and malformed or unknown directives are reported.
package suppress

import "time"

// OneLineTwoAnalyzers triggers nodeterm and floatfold on the same line; the
// allow names only floatfold, so the nodeterm finding must survive.
func OneLineTwoAnalyzers(m map[string]float64) float64 {
	total := 0.0
	for range m {
		//itmlint:allow floatfold fixture: silence exactly one analyzer
		total += float64(time.Now().Unix())
	}
	return total
}

// Stale carries an allow with no matching diagnostic on this or the next
// line.
func Stale() int {
	//itmlint:allow nodeterm nothing wrong on the next line
	return 1
}

// Malformed is missing its reason.
//itmlint:allow nodeterm
func Malformed() {}

// Unknown names an analyzer that does not exist.
//itmlint:allow nosuchcheck because reasons
func Unknown() {}
