// Package errdrop is run with its PkgPath overridden into the
// internal/measure scope: discarded error returns must be flagged.
package errdrop

import "strconv"

func parse(s string) (int, error) { return strconv.Atoi(s) }

func emit() error { return nil }

// Drop discards errors four ways: a bare call statement, a blank tuple
// position, a one-to-one blank assignment, and a deferred call.
func Drop(s string) int {
	parse(s)
	v, _ := parse(s)
	_ = emit()
	defer emit()
	return v
}

// Handled is clean.
func Handled(s string) (int, error) {
	v, err := parse(s)
	if err != nil {
		return 0, err
	}
	return v, nil
}
