// Package nodetermok is run with its PkgPath overridden to
// itmap/internal/randx: the seeded substrates themselves may touch the
// clock and the global stream, so nothing here may be flagged.
package nodetermok

import (
	"math/rand"
	"time"
)

// Inside would be a violation anywhere but the allowlisted substrates.
func Inside() (time.Time, float64) {
	return time.Now(), rand.Float64()
}
