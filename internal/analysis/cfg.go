package analysis

// cfg.go builds per-function control-flow graphs over plain go/ast — no
// golang.org/x/tools. The graphs are statement-level: each Block holds a
// run of straight-line nodes (statements plus the decomposed pieces of
// composite statements, e.g. an if's Init and Cond), and Succs lists the
// blocks control may reach next. A synthetic Exit block terminates every
// function; return, panic, and falling off the end all edge into it.
//
// The builder understands the full statement grammar of Go 1.22,
// including range-over-int and range-over-func (a RangeStmt is kept whole
// as a loop-head node), labeled break/continue, goto, fallthrough, and
// select. Function literals are NOT inlined: a FuncLit appearing inside a
// statement is an opaque value here, and callers analyze its body as a
// separate graph (see flowFuncs).

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of AST nodes with its successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is one function body's control-flow graph. Blocks[0] is the entry;
// Exit is the synthetic sink every terminating path reaches.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
	}
	b.cfg.Exit = b.newBlock() // Blocks[0] temporarily; fixed below
	entry := b.newBlock()
	// Keep entry at index 0 for readers that iterate Blocks in order.
	b.cfg.Blocks[0], b.cfg.Blocks[1] = b.cfg.Blocks[1], b.cfg.Blocks[0]
	b.cfg.Blocks[0].Index, b.cfg.Blocks[1].Index = 0, 1
	b.cur = entry
	b.stmtList(body.List)
	b.edgeTo(b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, target)
		} else {
			// Undefined label: type checking already rejected it; route to
			// Exit so the graph stays well-formed on broken input.
			g.from.Succs = append(g.from.Succs, b.cfg.Exit)
		}
	}
	return b.cfg
}

// branchTarget is one live break or continue destination, optionally
// labeled.
type branchTarget struct {
	label string
	block *Block
}

// pendingGoto is a goto awaiting its label's block (forward gotos).
type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg       *CFG
	cur       *Block
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*Block
	gotos     []pendingGoto
	// curLabel is the label of the labeled statement being entered, so the
	// next loop/switch/select claims it for break/continue matching.
	curLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edgeTo links the current block to next (if control can still flow).
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
}

// startBlock makes next the current block.
func (b *cfgBuilder) startBlock(next *Block) { b.cur = next }

// add appends a straight-line node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending label from an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(x.List)
	case *ast.LabeledStmt:
		// The label starts a fresh block so gotos have a landing site.
		lb := b.newBlock()
		b.edgeTo(lb)
		b.startBlock(lb)
		b.labels[x.Label.Name] = lb
		b.curLabel = x.Label.Name
		b.stmt(x.Stmt)
		b.curLabel = ""
	case *ast.IfStmt:
		b.takeLabel()
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Cond)
		thenB := b.newBlock()
		after := b.newBlock()
		b.edgeTo(thenB)
		if x.Else != nil {
			elseB := b.newBlock()
			b.edgeTo(elseB)
			b.startBlock(thenB)
			b.stmtList(x.Body.List)
			b.edgeTo(after)
			b.startBlock(elseB)
			b.stmt(x.Else)
			b.edgeTo(after)
		} else {
			b.edgeTo(after)
			b.startBlock(thenB)
			b.stmtList(x.Body.List)
			b.edgeTo(after)
		}
		b.startBlock(after)
	case *ast.ForStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.add(x.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edgeTo(head)
		b.startBlock(head)
		if x.Cond != nil {
			b.add(x.Cond)
			b.edgeTo(after)
		}
		b.edgeTo(body)
		contTarget := head
		var post *Block
		if x.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, x.Post)
			post.Succs = append(post.Succs, head)
			contTarget = post
		}
		b.pushLoop(label, after, contTarget)
		b.startBlock(body)
		b.stmtList(x.Body.List)
		b.popLoop()
		b.edgeTo(contTarget)
		b.startBlock(after)
	case *ast.RangeStmt:
		// Range loops — over slices, maps, channels, ints (Go 1.22), and
		// funcs — keep the whole RangeStmt as the loop-head node; per-
		// iteration key/value definition happens there.
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edgeTo(head)
		b.startBlock(head)
		b.add(x)
		b.edgeTo(body)
		b.edgeTo(after)
		b.pushLoop(label, after, head)
		b.startBlock(body)
		b.stmtList(x.Body.List)
		b.popLoop()
		b.edgeTo(head)
		b.startBlock(after)
	case *ast.SwitchStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.add(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchBody(label, x.Body, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Assign)
		b.switchBody(label, x.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, after})
		head := b.cur
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			head.Succs = append(head.Succs, cb)
			b.startBlock(cb)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeTo(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.startBlock(after)
	case *ast.ReturnStmt:
		b.takeLabel()
		b.add(x)
		b.edgeTo(b.cfg.Exit)
		b.startBlock(b.newBlock()) // anything after is unreachable
	case *ast.BranchStmt:
		b.takeLabel()
		switch x.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, x.Label); t != nil {
				b.edgeTo(t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, x.Label); t != nil {
				b.edgeTo(t)
			}
		case token.GOTO:
			if target, ok := b.labels[x.Label.Name]; ok {
				b.edgeTo(target)
			} else if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{b.cur, x.Label.Name})
			}
		case token.FALLTHROUGH:
			// Handled structurally in switchBody; nothing to do here.
			return
		}
		b.startBlock(b.newBlock())
	case *ast.ExprStmt:
		b.takeLabel()
		b.add(x)
		if isPanicCall(x.X) {
			b.edgeTo(b.cfg.Exit)
			b.startBlock(b.newBlock())
		}
	default:
		// Assign, IncDec, Decl, Defer, Go, Send, Empty: straight-line.
		b.takeLabel()
		if _, ok := s.(*ast.EmptyStmt); !ok {
			b.add(s)
		}
	}
}

// switchBody wires the clauses of a switch or type switch: every case is
// entered from the head block (conservatively — go/types has already
// verified exhaustiveness rules), break jumps past it, and in an
// expression switch a trailing fallthrough edges into the next clause.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		head.Succs = append(head.Succs, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	for i, cc := range clauses {
		b.startBlock(blocks[i])
		for _, e := range cc.List {
			b.add(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if allowFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = i+1 < len(blocks)
				stmts = stmts[:len(stmts)-1]
			}
		}
		b.stmtList(stmts)
		if fallsThrough {
			b.edgeTo(blocks[i+1])
		} else {
			b.edgeTo(after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.startBlock(after)
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
	b.continues = append(b.continues, branchTarget{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue: labeled picks the matching frame,
// bare picks the innermost.
func findTarget(stack []branchTarget, label *ast.Ident) *Block {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// shallowWalk visits the expressions a single CFG node owns, pruning
// nested function literals (their bodies are separate graphs) and, for a
// RangeStmt loop head, the loop body (its statements live in other
// blocks). It is the expression-level companion to block iteration: a
// visitor over every node of every block via shallowWalk sees each
// expression of the function exactly once.
func shallowWalk(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			shallowWalk(rs.Key, visit)
		}
		if rs.Value != nil {
			shallowWalk(rs.Value, visit)
		}
		shallowWalk(rs.X, visit)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !visit(m) {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
}
