package analysis

// lockguard enforces the repo's annotated locking discipline. A struct
// field carrying
//
//	//itm:guardedby <mu>
//
// (where <mu> names a sibling sync.Mutex or sync.RWMutex field) may only
// be read while that mutex is held — shared or exclusive — and only be
// written while it is held exclusively. The dataflow layer supplies the
// lock-set at every program point, so straight-line Lock/defer Unlock,
// early-unlock branches, and multi-mutex paths ("f.mem.mu") all resolve
// correctly. Two escapes keep constructors and helpers honest without
// suppressions:
//
//   - a provably fresh value (allocated here, not yet shared) may be
//     filled lock-free — nobody else can see it yet;
//   - a function annotated //itm:locked <mu> is checked as if the
//     receiver's mutex were already held: its callers own the lock.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "enforce //itm:guardedby field annotations: guarded fields are " +
		"accessed only under their mutex (exclusively, for writes)",
	Run: runLockGuard,
}

const (
	guardedByPrefix = "//itm:guardedby"
	lockedPrefix    = "//itm:locked"
)

// guardSpec is one annotated field: the sibling mutex's name and the
// owning struct's display name.
type guardSpec struct {
	mu    string
	owner string
	field string
}

func runLockGuard(p *Pass) {
	guards := p.collectGuards()
	for _, fn := range p.flowFuncs() {
		var init map[pathKey]lockMode
		if fn.decl != nil {
			init = p.lockedAnnotations(fn.decl)
		}
		if len(guards) == 0 && init == nil {
			continue
		}
		ff := newFuncFlow(p, fn.body, init)
		ff.walk(func(n ast.Node, st *flowState) {
			p.checkGuardedNode(guards, n, st)
		})
	}
}

// collectGuards parses every //itm:guardedby directive in the package,
// reporting malformed ones, and returns guarded-field objects → spec.
func (p *Pass) collectGuards() map[types.Object]guardSpec {
	guards := make(map[types.Object]guardSpec)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				arg, pos, ok := fieldDirective(fld, guardedByPrefix)
				if !ok {
					continue
				}
				if len(strings.Fields(arg)) != 1 {
					p.Reportf(pos, "malformed %s: want \"%s <mutexField>\"", guardedByPrefix, guardedByPrefix)
					continue
				}
				mu := strings.TrimSpace(arg)
				if len(fld.Names) == 0 {
					p.Reportf(pos, "%s cannot annotate an embedded field", guardedByPrefix)
					continue
				}
				if !p.structHasMutex(st, mu) {
					p.Reportf(pos, "%s names %q, which is not a sync.Mutex/RWMutex field of %s", guardedByPrefix, mu, ts.Name.Name)
					continue
				}
				for _, name := range fld.Names {
					if obj := p.ObjectOf(name); obj != nil {
						guards[obj] = guardSpec{mu: mu, owner: ts.Name.Name, field: name.Name}
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldDirective scans a struct field's doc and trailing comments for a
// directive with the given prefix, returning its argument text.
func fieldDirective(fld *ast.Field, prefix string) (arg string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, found := strings.CutPrefix(c.Text, prefix); found {
				return rest, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// structHasMutex reports whether st has a field named mu whose type is
// sync.Mutex or sync.RWMutex (or a pointer to one).
func (p *Pass) structHasMutex(st *ast.StructType, mu string) bool {
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if name.Name == mu {
				return isMutexType(p.TypeOf(fld.Type))
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockedAnnotations parses //itm:locked directives on a method: each one
// seeds the entry lock-set with the receiver's named mutex, held
// exclusively, because the contract is "caller holds the lock".
// Malformed directives are reported.
func (p *Pass) lockedAnnotations(fn *ast.FuncDecl) map[pathKey]lockMode {
	if fn.Doc == nil {
		return nil
	}
	var out map[pathKey]lockMode
	for _, c := range fn.Doc.List {
		rest, found := strings.CutPrefix(c.Text, lockedPrefix)
		if !found {
			continue
		}
		args := strings.Fields(rest)
		if len(args) != 1 {
			p.Reportf(c.Pos(), "malformed %s: want \"%s <mutexField>\"", lockedPrefix, lockedPrefix)
			continue
		}
		if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
			p.Reportf(c.Pos(), "%s requires a named method receiver", lockedPrefix)
			continue
		}
		recv := fn.Recv.List[0].Names[0]
		obj := p.ObjectOf(recv)
		if obj == nil {
			continue
		}
		if !receiverHasMutex(obj, args[0]) {
			p.Reportf(c.Pos(), "%s names %q, which is not a sync.Mutex/RWMutex field of the receiver", lockedPrefix, args[0])
			continue
		}
		if out == nil {
			out = make(map[pathKey]lockMode)
		}
		out[pathKey{root: obj, path: recv.Name + "." + args[0]}] = lockExclusive
	}
	return out
}

func receiverHasMutex(recv types.Object, mu string) bool {
	t := recv.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == mu {
			return isMutexType(f.Type())
		}
	}
	return false
}

// checkGuardedNode inspects one CFG node under its entry state: every
// selector resolving to a guarded field must have the matching mutex in
// the lock-set (exclusive when the selector sits in write position),
// unless the base value is still fresh.
func (p *Pass) checkGuardedNode(guards map[types.Object]guardSpec, n ast.Node, st *flowState) {
	writes := make(map[*ast.SelectorExpr]bool)
	collectWriteTargets(n, writes)
	shallowWalk(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.ObjectOf(sel.Sel)
		g, guarded := guards[obj]
		if !guarded {
			return true
		}
		access := "read"
		if writes[sel] {
			access = "written"
		}
		base, renderable := p.pathOf(sel.X)
		if !renderable {
			p.Reportf(sel.Pos(), "%s.%s (guarded by %s) is %s through an expression the lock checker cannot track",
				g.owner, g.field, g.mu, access)
			return true
		}
		if st.fresh[base.root] {
			return true
		}
		need := pathKey{root: base.root, path: base.path + "." + g.mu}
		have := st.locks[need]
		render := base.path + "." + sel.Sel.Name
		switch {
		case have == 0:
			p.Reportf(sel.Pos(), "%s is %s without holding %s (%s.%s is //itm:guardedby %s)",
				render, access, need.path, g.owner, g.field, g.mu)
		case have == lockShared && writes[sel]:
			p.Reportf(sel.Pos(), "%s is written while %s is only read-locked; writes need the exclusive Lock",
				render, need.path)
		}
		return true
	})
}

// collectWriteTargets marks every selector in write position within node
// n: assignment left-hand sides (including through index and deref),
// IncDec operands, address-of operands, and the map argument of delete.
func collectWriteTargets(n ast.Node, writes map[*ast.SelectorExpr]bool) {
	markAll := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			return true
		})
	}
	shallowWalk(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markAll(lhs)
			}
		case *ast.IncDecStmt:
			markAll(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markAll(x.X)
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				markAll(x.Args[0])
			}
		}
		return true
	})
}
