package analysis

import (
	"testing"
)

// TestRepoLintClean is the dogfood gate: every package of this module must
// load, type-check, and pass the full analyzer suite with zero diagnostics.
// CI also runs `make lint`; this test makes the same guarantee reachable
// from plain `go test ./...` and keeps the loader's whole-module walk
// exercised.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	l := testLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; the walk is likely broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errs {
			t.Errorf("load %s: %v", pkg.PkgPath, e)
		}
		for _, d := range Run(pkg, All()) {
			t.Errorf("%s", d)
		}
	}
}
