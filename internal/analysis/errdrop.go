package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropScopes are the module-relative package prefixes errdrop patrols:
// the measurement clients and the map-assembly core. These layers face the
// fault injector, and a silently dropped transient there turns into a
// coverage hole no test will attribute.
var errdropScopes = []string{
	"internal/measure",
	"internal/core",
}

// ErrDrop flags discarded error returns — a call used as a bare statement
// (or deferred) whose results include an error, or an error result assigned
// to the blank identifier — inside the measurement and core packages.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded error returns in internal/measure/... and internal/core",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	if !inErrdropScope(p.Pkg.PkgPath) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				p.checkDiscardedCall(call, "")
			}
		case *ast.DeferStmt:
			p.checkDiscardedCall(stmt.Call, "deferred ")
		case *ast.AssignStmt:
			p.checkBlankError(stmt)
		}
		return true
	})
}

func inErrdropScope(pkgPath string) bool {
	for _, scope := range errdropScopes {
		if strings.HasSuffix(pkgPath, "/"+scope) || strings.Contains(pkgPath, "/"+scope+"/") {
			return true
		}
	}
	return false
}

func (p *Pass) checkDiscardedCall(call *ast.CallExpr, kind string) {
	t := p.TypeOf(call)
	if t == nil || !resultHasError(t) {
		return
	}
	p.Reportf(call.Pos(), "%serror result of %s discarded: handle it or assign with an //itmlint:allow", kind, types.ExprString(call.Fun))
}

// checkBlankError flags `_` positions that swallow an error, both in
// tuple-unpacking form (`v, _ := f()`) and one-to-one assignments.
func (p *Pass) checkBlankError(stmt *ast.AssignStmt) {
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := p.TypeOf(call).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if i < tuple.Len() && isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of %s assigned to blank identifier", types.ExprString(call.Fun))
			}
		}
		return
	}
	for i, lhs := range stmt.Lhs {
		if i >= len(stmt.Rhs) || !isBlank(lhs) {
			continue
		}
		if t := p.TypeOf(stmt.Rhs[i]); t != nil && isErrorType(t) {
			p.Reportf(lhs.Pos(), "error value assigned to blank identifier")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func resultHasError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(rt)
	}
}
