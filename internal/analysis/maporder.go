package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags map-range loops whose bodies leak iteration order into an
// observable sequence: appending to a slice (unless the slice is passed to
// a sort/slices call later in the same function), writing to an io.Writer,
// or sending on a channel. Go randomizes map iteration per run, so any of
// these makes exported output differ between identical (config, seed) runs.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map bodies that append to unsorted slices, write " +
		"to io.Writers, or send on channels",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	writer := ioWriterType()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p, rs) {
				return true
			}
			encl := funcOf(f, rs.Pos())
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				switch stmt := m.(type) {
				case *ast.SendStmt:
					p.Reportf(stmt.Pos(), "channel send inside map iteration leaks nondeterministic order")
				case *ast.AssignStmt:
					p.checkMapRangeAppend(stmt, rs, encl)
				case *ast.CallExpr:
					p.checkMapRangeWrite(stmt, writer)
				}
				return true
			})
			return true
		})
	}
}

func isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	t := p.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeAppend flags `s = append(s, ...)` in a map-range body unless
// s is handed to a sort or slices call after the loop in the same function
// (the collect-then-sort idiom). The target may be a plain variable or a
// selector chain like d.Field.
func (p *Pass) checkMapRangeAppend(stmt *ast.AssignStmt, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	for i, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p, call) || i >= len(stmt.Lhs) {
			continue
		}
		key, name := p.sliceKey(stmt.Lhs[i])
		if key == (sliceKey{}) {
			// Index expressions and other untrackable targets: no
			// sorted-later tracking, flag it.
			p.Reportf(stmt.Pos(), "append inside map iteration leaks nondeterministic order (sort before emitting)")
			continue
		}
		// A slice declared inside the loop body lives one iteration; its
		// order cannot leak across the map's iteration order.
		if key.root.Pos() >= rs.Body.Pos() && key.root.Pos() < rs.Body.End() {
			continue
		}
		if sortedLater(p, encl, rs.End(), key) {
			continue
		}
		p.Reportf(stmt.Pos(), "append to %s inside map iteration without a later sort leaks nondeterministic order", name)
	}
}

// sliceKey identifies an append target across statements: the root object
// plus the rendered selector path ("d.ActivityShifts"); for a plain
// identifier the path is just its name.
type sliceKey struct {
	root types.Object
	path string
}

func (p *Pass) sliceKey(e ast.Expr) (sliceKey, string) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.ObjectOf(x); obj != nil {
			return sliceKey{root: obj, path: x.Name}, x.Name
		}
	case *ast.SelectorExpr:
		base, ok := x.X.(*ast.Ident)
		if !ok {
			break
		}
		if obj := p.ObjectOf(base); obj != nil {
			path := base.Name + "." + x.Sel.Name
			return sliceKey{root: obj, path: path}, path
		}
	}
	return sliceKey{}, ""
}

// checkMapRangeWrite flags writes to io.Writers inside a map-range body:
// fmt.Fprint* calls, or Write/WriteString/WriteByte/WriteRune methods on a
// receiver that implements io.Writer.
func (p *Pass) checkMapRangeWrite(call *ast.CallExpr, writer *types.Interface) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		if fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				p.Reportf(call.Pos(), "fmt.%s inside map iteration writes in nondeterministic order", fn.Name())
			}
		}
		return
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return
	}
	recv := p.TypeOf(sel.X)
	if recv == nil {
		return
	}
	if types.Implements(recv, writer) || types.Implements(types.NewPointer(recv), writer) {
		p.Reportf(call.Pos(), "%s on an io.Writer inside map iteration writes in nondeterministic order", fn.Name())
	}
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether the append target is mentioned in a call
// into package sort or slices after pos within body — the "collect keys,
// then sort" idiom.
func sortedLater(p *Pass, body *ast.BlockStmt, pos token.Pos, key sliceKey) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if e, ok := a.(ast.Expr); ok {
					if k, _ := p.sliceKey(e); k == key {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// ioWriterType builds the io.Writer interface from first principles so the
// analyzer never needs to import package io's sources.
func ioWriterType() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", errType),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}
