package analysis

// pubfreeze enforces publish-then-freeze: the serving stack shares state
// with concurrent readers by storing a pointer into an atomic.Pointer
// (epoch lists, the obs default set, cache snapshots), and from that
// moment the pointed-to value is immutable — readers hold it with no
// lock. Any write through a variable after it (or a pointer copy of it)
// reaches a .Store/.Swap/.CompareAndSwap call on an atomic.Pointer is a
// data race waiting for load, so it is flagged. Rebinding the variable
// itself (x = &T{...}) is fine: that forgets the published value rather
// than mutating it.

import (
	"go/ast"
)

var PubFreeze = &Analyzer{
	Name: "pubfreeze",
	Doc: "flag mutations of values after they were published through an " +
		"atomic.Pointer Store/Swap — published snapshots are immutable",
	Run: runPubFreeze,
}

func runPubFreeze(p *Pass) {
	for _, fn := range p.flowFuncs() {
		ff := newFuncFlow(p, fn.body, nil)
		ff.walk(func(n ast.Node, st *flowState) {
			if len(st.pub) == 0 {
				return
			}
			shallowWalk(n, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						p.checkPubWrite(st, lhs)
					}
				case *ast.IncDecStmt:
					p.checkPubWrite(st, x.X)
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
						p.checkPubWrite(st, x.Args[0])
					}
				}
				return true
			})
		})
	}
}

// checkPubWrite flags lhs when it writes *through* a published variable:
// x.f = v, x.m[k] = v, *x = v, delete(x.m, k), x.n++. A plain rebind
// (x = v) does not mutate the published allocation and passes.
func (p *Pass) checkPubWrite(st *flowState, lhs ast.Expr) {
	e := unparen(lhs)
	through := false
loop:
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = unparen(x.X)
			through = true
		case *ast.IndexExpr:
			e = unparen(x.X)
			through = true
		case *ast.StarExpr:
			e = unparen(x.X)
			through = true
		default:
			break loop
		}
	}
	id, ok := e.(*ast.Ident)
	if !ok || !through {
		return
	}
	obj := p.ObjectOf(id)
	if obj == nil || !st.pub[obj] {
		return
	}
	p.Reportf(lhs.Pos(), "%s was published via atomic.Pointer and is frozen; this write races with lock-free readers", id.Name)
}
