package analysis

import "testing"

// TestNodetermAllowlistFrozen pins the nodeterm path exemptions to the two
// seeded substrates. Any other wall-clock use — the observability layer's
// HTTP duration bridge, itm-loadgen's latency measurement — must carry a
// justified line-level //itmlint:allow, never a new package exemption: line
// allows are visible at the call site and go stale loudly, path exemptions
// silently cover a whole package forever. In particular, internal/loadgen
// stays OFF this list even though it times every request: its wall-clock
// reads feed only the Perf ledger, never the deterministic counters.
func TestNodetermAllowlistFrozen(t *testing.T) {
	want := map[string]bool{
		"internal/simtime": true,
		"internal/randx":   true,
	}
	if len(nodetermAllowedPkgs) != len(want) {
		t.Fatalf("nodetermAllowedPkgs = %v, want exactly %v", nodetermAllowedPkgs, want)
	}
	for pkg := range want {
		if !nodetermAllowedPkgs[pkg] {
			t.Fatalf("nodetermAllowedPkgs = %v, missing %q", nodetermAllowedPkgs, pkg)
		}
	}
}
