package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNodetermAllowlistFrozen pins the nodeterm path exemptions to the two
// seeded substrates. Any other wall-clock use — the observability layer's
// HTTP duration bridge, itm-loadgen's latency measurement — must carry a
// justified line-level //itmlint:allow, never a new package exemption: line
// allows are visible at the call site and go stale loudly, path exemptions
// silently cover a whole package forever. In particular, internal/loadgen
// stays OFF this list even though it times every request: its wall-clock
// reads feed only the Perf ledger, never the deterministic counters.
func TestNodetermAllowlistFrozen(t *testing.T) {
	want := map[string]bool{
		"internal/simtime": true,
		"internal/randx":   true,
	}
	if len(nodetermAllowedPkgs) != len(want) {
		t.Fatalf("nodetermAllowedPkgs = %v, want exactly %v", nodetermAllowedPkgs, want)
	}
	for pkg := range want {
		if !nodetermAllowedPkgs[pkg] {
			t.Fatalf("nodetermAllowedPkgs = %v, missing %q", nodetermAllowedPkgs, pkg)
		}
	}
}

// TestObsV2PackagesHoldNoClockExemptions pins the obs v2 determinism
// surfaces — the telemetry history ring and the SLO engine — fully inside
// the no-wall-clock contract: neither package may appear on the nodeterm
// path allowlist, and neither may carry even a line-level
// //itmlint:allow nodeterm. Their whole value is that history samples and
// burn-rate reports are byte-identical across runs; one smuggled clock read
// would quietly void that.
func TestObsV2PackagesHoldNoClockExemptions(t *testing.T) {
	frozen := []string{"internal/obs/history", "internal/obs/slo"}
	for _, pkg := range frozen {
		if nodetermAllowedPkgs[pkg] {
			t.Errorf("%s must never join nodetermAllowedPkgs", pkg)
		}
	}
	for _, pkg := range frozen {
		dir := filepath.Join("..", "..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(src), "itmlint:allow nodeterm") {
				t.Errorf("%s/%s carries a nodeterm allow; the obs v2 packages must stay clock-free",
					pkg, e.Name())
			}
		}
	}
}
