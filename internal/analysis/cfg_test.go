package analysis

// cfg_test.go pins the CFG builder's control-flow corners — goto, labeled
// break/continue, select, fallthrough, panic — without type-checking:
// BuildCFG needs only syntax, so each case parses a tiny function and
// asserts reachability between mark("...") calls placed along the paths
// of interest.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc mark(string) {}\nfunc f(x int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[1].(*ast.FuncDecl)
	cfg := BuildCFG(fn.Body)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			if s.Index < 0 || s.Index >= len(cfg.Blocks) {
				t.Fatalf("block %d has successor with out-of-range index %d", b.Index, s.Index)
			}
		}
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Fatalf("exit block has %d successors, want 0", len(cfg.Exit.Succs))
	}
	return cfg
}

// markerBlock returns the index of the block containing mark(name).
func markerBlock(t *testing.T, cfg *CFG, name string) int {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "mark" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if ok && lit.Value == strconv.Quote(name) {
					found = true
				}
				return true
			})
			if found {
				return b.Index
			}
		}
	}
	t.Fatalf("mark(%q) not found in any block", name)
	return -1
}

// reachableFrom returns the set of block indexes reachable from start
// (start included).
func reachableFrom(cfg *CFG, start int) map[int]bool {
	seen := map[int]bool{start: true}
	work := []int{start}
	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range cfg.Blocks[idx].Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, s.Index)
			}
		}
	}
	return seen
}

// checkReach asserts which markers are reachable from the entry block.
func checkReach(t *testing.T, cfg *CFG, want map[string]bool) {
	t.Helper()
	seen := reachableFrom(cfg, 0)
	for name, wantReach := range want {
		got := seen[markerBlock(t, cfg, name)]
		if got != wantReach {
			t.Errorf("mark(%q): reachable from entry = %v, want %v", name, got, wantReach)
		}
	}
}

func TestCFGGotoForward(t *testing.T) {
	cfg := buildTestCFG(t, `
	goto done
	mark("skipped")
done:
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"skipped": false, "after": true})
}

func TestCFGGotoBackward(t *testing.T) {
	cfg := buildTestCFG(t, `
again:
	mark("loop")
	if x > 0 {
		goto again
	}
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"loop": true, "after": true})
	// The backward goto closes a cycle: some successor of "loop" reaches
	// "loop" again.
	loop := markerBlock(t, cfg, "loop")
	cyclic := false
	for _, s := range cfg.Blocks[loop].Succs {
		if reachableFrom(cfg, s.Index)[loop] {
			cyclic = true
		}
	}
	if !cyclic {
		t.Errorf("backward goto did not close a cycle through mark(\"loop\")")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := buildTestCFG(t, `
outer:
	for {
		for {
			if x > 0 {
				break outer
			}
			mark("inner")
		}
		mark("between")
	}
	mark("after")`)
	// break outer exits both loops, so "after" is reachable. The inner
	// condition-less for only exits via break outer, so "between" (after
	// the inner loop, inside the outer body) is unreachable.
	checkReach(t, cfg, map[string]bool{"inner": true, "between": false, "after": true})
}

func TestCFGLabeledContinue(t *testing.T) {
	cfg := buildTestCFG(t, `
outer:
	for i := 0; i < x; i++ {
		for j := 0; j < x; j++ {
			if j > i {
				continue outer
			}
			mark("inner")
		}
		mark("tail")
	}
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"inner": true, "tail": true, "after": true})
}

func TestCFGSelect(t *testing.T) {
	cfg := buildTestCFG(t, `
	select {
	case v := <-ch:
		_ = v
		mark("recv")
	case ch <- x:
		mark("send")
	default:
		mark("none")
	}
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"recv": true, "send": true, "none": true, "after": true})
	after := markerBlock(t, cfg, "after")
	for _, name := range []string{"recv", "send", "none"} {
		if !reachableFrom(cfg, markerBlock(t, cfg, name))[after] {
			t.Errorf("select case %q does not flow to the statement after the select", name)
		}
	}
}

func TestCFGFallthrough(t *testing.T) {
	cfg := buildTestCFG(t, `
	switch x {
	case 1:
		mark("one")
		fallthrough
	case 2:
		mark("two")
	default:
		mark("def")
	}
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"one": true, "two": true, "def": true, "after": true})
	// fallthrough chains case 1 into case 2's body.
	if !reachableFrom(cfg, markerBlock(t, cfg, "one"))[markerBlock(t, cfg, "two")] {
		t.Errorf("fallthrough edge from case 1 to case 2 missing")
	}
	// Without fallthrough, case 2 does not flow into default.
	if reachableFrom(cfg, markerBlock(t, cfg, "two"))[markerBlock(t, cfg, "def")] {
		t.Errorf("case 2 unexpectedly flows into default")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	cfg := buildTestCFG(t, `
	if x > 0 {
		mark("doomed")
		panic("boom")
	}
	mark("after")`)
	checkReach(t, cfg, map[string]bool{"doomed": true, "after": true})
	// From the panic's block, execution goes only to the exit: "after"
	// must not be reachable.
	if reachableFrom(cfg, markerBlock(t, cfg, "doomed"))[markerBlock(t, cfg, "after")] {
		t.Errorf("statement after an if-panic branch is reachable from the panic block")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	src := `
	var v interface{} = x
	switch v.(type) {
	case int:
		mark("int")
	case string:
		mark("string")
	}
	mark("after")`
	cfg := buildTestCFG(t, src)
	checkReach(t, cfg, map[string]bool{"int": true, "string": true, "after": true})
}
