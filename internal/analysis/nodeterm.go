package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// nodetermAllowedPkgs are the seeded substrates themselves: simtime wraps
// the clock, randx wraps math/rand. Everything else must go through them
// (wall-clock bridges like socket deadlines carry //itmlint:allow).
var nodetermAllowedPkgs = map[string]bool{
	"internal/simtime": true,
	"internal/randx":   true,
}

// nodetermBannedTime is the subset of package time that reads or advances
// the wall clock. Types and constants (time.Duration, time.Second) are fine.
var nodetermBannedTime = map[string]string{
	"Now":   "use internal/simtime (or annotate a wall-clock bridge)",
	"Since": "use internal/simtime to measure simulated elapsed time",
	"Sleep": "use simtime-scheduled delays (resilience.Backoff) instead of blocking",
}

// NoDeterm forbids wall-clock reads and global math/rand use outside the
// seeded substrates, so every run is a pure function of (config, seed).
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now/Since/Sleep and package-level math/rand outside " +
		"internal/simtime and internal/randx",
	Run: runNoDeterm,
}

func runNoDeterm(p *Pass) {
	if allowedPkg(p.Pkg.PkgPath, nodetermAllowedPkgs) {
		return
	}
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Only package-level functions: methods on *rand.Rand are a
		// caller-seeded stream and belong to randx's implementation.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if hint, banned := nodetermBannedTime[fn.Name()]; banned {
				p.Reportf(sel.Pos(), "time.%s reads the wall clock: %s", fn.Name(), hint)
			}
		case "math/rand", "math/rand/v2":
			p.Reportf(sel.Pos(), "package-level %s.%s bypasses the seeded substrate: use internal/randx",
				fn.Pkg().Name(), fn.Name())
		}
		return true
	})
}

// allowedPkg reports whether pkgPath ends with one of the allowlisted
// module-relative suffixes.
func allowedPkg(pkgPath string, allowed map[string]bool) bool {
	for suffix := range allowed {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}
