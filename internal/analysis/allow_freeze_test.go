package analysis

// allow_freeze_test.go pins the line-level //itmlint:allow population for
// the v2 concurrency/durability analyzers, the way the nodeterm freeze
// pins its package exemptions: growing the list is a reviewed decision,
// not a drive-by. Suppressing lockguard/pubfreeze/oncefill/syncack hides
// a potential data race or a broken durability ack, so every entry must
// clear a high bar — today that is exactly one: WireClient.Close, which
// deliberately skips its mutex to interrupt a blocked read.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var v2AllowRe = regexp.MustCompile(`//itmlint:allow\s+(lockguard|pubfreeze|oncefill|syncack)\b`)

// TestV2AllowlistFrozen walks every non-testdata .go file in the module
// and asserts the v2-analyzer allows are exactly the frozen set.
func TestV2AllowlistFrozen(t *testing.T) {
	frozen := map[string]bool{
		"internal/dnssim/wire.go:lockguard": true,
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			// Fixtures demonstrate suppressions on purpose.
			if info.Name() == "testdata" || strings.HasPrefix(info.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, path)
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if m := v2AllowRe.FindStringSubmatch(sc.Text()); m != nil {
				got[filepath.ToSlash(rel)+":"+m[1]] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if !frozen[k] {
			t.Errorf("new //itmlint:allow for a v2 analyzer at %s — these suppress race/durability checks; extend the frozen set only with review", k)
		}
	}
	for k := range frozen {
		if !got[k] {
			t.Errorf("frozen allow %s no longer exists; prune it from the frozen set", k)
		}
	}
}
