// Package analysis implements itm-lint: a suite of project-specific
// determinism and safety analyzers built only on the Go standard library
// (go/ast + go/types). The toolkit's reproducibility promise — identical
// bytes from (config, seed) regardless of worker count or host — rests on
// invariants that byte-parity tests can only spot-check; these analyzers
// enforce them everywhere:
//
//   - nodeterm:  no wall clocks or global math/rand outside the seeded
//     substrates (internal/simtime, internal/randx)
//   - maporder:  no map-iteration order leaking into slices, writers, or
//     channels without an intervening sort
//   - floatfold: no order-dependent float accumulation inside map ranges
//   - errdrop:   no silently discarded errors in the measurement clients
//   - seedflow:  no per-iteration reconstruction of randx sources
//
// The v2 analyzers sit on an intraprocedural dataflow layer (cfg.go,
// dataflow.go) that tracks lock-sets, value freshness, and atomic
// publication per program point, and turn DESIGN.md §9–§12's concurrency
// and durability invariants into machine-checked rules:
//
//   - lockguard: fields annotated //itm:guardedby <mu> are accessed only
//     while that mutex is held (exclusively, for writes)
//   - pubfreeze: values stored into an atomic.Pointer are frozen — no
//     writes through any alias after publication
//   - oncefill:  fields filled inside sync.Once.Do are written nowhere
//     else (single-flight results are write-once)
//   - syncack:   in internal/mapstore/wal, no path from a journal write
//     to a nil-error return may skip the fsync
//
// Findings can be suppressed line-by-line with
//
//	//itmlint:allow <analyzer> <reason>
//
// on the offending line or the line above it. A suppression that matches
// no diagnostic is itself reported, so stale annotations cannot linger.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package and collects reports.
type Pass struct {
	An  *Analyzer
	Pkg *Package
	out *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.An.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// Diagnostic is one finding, printed as "file:line:col: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full itm-lint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{NoDeterm, MapOrder, FloatFold, ErrDrop, SeedFlow,
		LockGuard, PubFreeze, OnceFill, SyncAck}
}

// SuppressName is the pseudo-analyzer under which stale or malformed
// //itmlint:allow comments are reported. It cannot itself be suppressed.
const SuppressName = "suppress"

// allowDirective is one parsed //itmlint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//itmlint:allow"

// Run executes the given analyzers over pkg, applies //itmlint:allow
// suppressions, reports stale or malformed suppressions, and returns the
// surviving diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, an := range analyzers {
		an.Run(&Pass{An: an, Pkg: pkg, out: &raw})
	}
	// Nested loops can make an analyzer visit the same node from two
	// enclosing scopes; a finding is a finding once.
	seen := make(map[Diagnostic]bool, len(raw))
	uniq := raw[:0]
	for _, d := range raw {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	raw = uniq

	known := make(map[string]bool, len(analyzers))
	for _, an := range analyzers {
		known[an.Name] = true
	}

	var allows []*allowDirective
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					out = append(out, Diagnostic{Pos: pos, Analyzer: SuppressName,
						Message: "malformed //itmlint:allow: want \"//itmlint:allow <analyzer> <reason>\""})
					continue
				}
				if fields[0] != SuppressName && !knownAnalyzer(fields[0]) {
					out = append(out, Diagnostic{Pos: pos, Analyzer: SuppressName,
						Message: fmt.Sprintf("//itmlint:allow names unknown analyzer %q", fields[0])})
					continue
				}
				allows = append(allows, &allowDirective{pos: pos, analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
			}
		}
	}

	for _, d := range raw {
		if a := matchAllow(allows, d); a != nil {
			a.used = true
			continue
		}
		out = append(out, d)
	}
	for _, a := range allows {
		// Only judge staleness for analyzers that actually ran: a partial
		// run (e.g. a single-analyzer test) must not flag allows belonging
		// to the rest of the suite.
		if !a.used && known[a.analyzer] {
			out = append(out, Diagnostic{Pos: a.pos, Analyzer: SuppressName,
				Message: fmt.Sprintf("stale //itmlint:allow %s: no matching diagnostic on this or the next line", a.analyzer)})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// matchAllow finds an allow for d: same file, same analyzer, and the
// comment sits on the diagnostic's line (trailing) or the line above.
func matchAllow(allows []*allowDirective, d Diagnostic) *allowDirective {
	for _, a := range allows {
		if a.analyzer != d.Analyzer || a.pos.Filename != d.Pos.Filename {
			continue
		}
		if a.pos.Line == d.Pos.Line || a.pos.Line == d.Pos.Line-1 {
			return a
		}
	}
	return nil
}

func knownAnalyzer(name string) bool {
	for _, an := range All() {
		if an.Name == name {
			return true
		}
	}
	return false
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// funcOf is a helper for analyzers that need the enclosing function body
// of a node: it returns the innermost FuncDecl or FuncLit body containing
// pos in file f, or nil.
func funcOf(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			best = body
		}
		return true
	})
	return best
}
