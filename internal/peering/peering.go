// Package peering implements the paper's §3.3.3 proposal: predict the
// existence of unobserved peering links by treating peering as a
// recommendation problem. Networks are "shoppers", potential peers are
// "items"; a network is likely to peer with the networks its look-alikes
// already peer with. Features come from public information only: a
// PeeringDB-like registry (facility presence, peering policy, network
// type), observed adjacencies, and coarse user estimates.
package peering

import (
	"math"
	"sort"

	"itmap/internal/apnic"
	"itmap/internal/order"
	"itmap/internal/topology"
)

// Record is one network's public registry entry.
type Record struct {
	ASN        topology.ASN
	Name       string
	Type       topology.ASType
	Policy     topology.PeeringPolicy
	Facilities []topology.FacilityID
	// UserWeight is the published (APNIC-like) user estimate.
	UserWeight float64
}

// Registry is the PeeringDB stand-in.
type Registry struct {
	Records map[topology.ASN]*Record
}

// BuildRegistry assembles the registry from public per-AS information.
func BuildRegistry(top *topology.Topology, est *apnic.Estimates) *Registry {
	r := &Registry{Records: map[topology.ASN]*Record{}}
	for _, asn := range top.ASNs() {
		a := top.ASes[asn]
		rec := &Record{
			ASN:        asn,
			Name:       a.Name,
			Type:       a.Type,
			Policy:     a.Policy,
			Facilities: a.Facilities,
		}
		if est != nil {
			if u, ok := est.Users(asn); ok {
				rec.UserWeight = u
			}
		}
		r.Records[asn] = rec
	}
	return r
}

// Candidate is one recommended link.
type Candidate struct {
	A, B             topology.ASN
	Score            float64
	SharedFacilities int
}

// Recommender scores candidate peerings from an observed topology.
type Recommender struct {
	reg      *Registry
	top      *topology.Topology
	observed map[topology.LinkKey]bool
	partners map[topology.ASN]map[topology.ASN]bool
}

// NewRecommender builds a recommender over the observed link set.
func NewRecommender(top *topology.Topology, reg *Registry, observed map[topology.LinkKey]bool) *Recommender {
	r := &Recommender{
		reg:      reg,
		top:      top,
		observed: observed,
		partners: map[topology.ASN]map[topology.ASN]bool{},
	}
	for lk := range observed {
		r.addPartner(lk.Lo, lk.Hi)
		r.addPartner(lk.Hi, lk.Lo)
	}
	return r
}

func (r *Recommender) addPartner(a, b topology.ASN) {
	if r.partners[a] == nil {
		r.partners[a] = map[topology.ASN]bool{}
	}
	r.partners[a][b] = true
}

// similarity is the cosine similarity of two ASes' observed partner sets.
func (r *Recommender) similarity(a, b topology.ASN) float64 {
	pa, pb := r.partners[a], r.partners[b]
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	if len(pb) < len(pa) {
		pa, pb = pb, pa
	}
	shared := 0
	for x := range pa {
		if pb[x] {
			shared++
		}
	}
	return float64(shared) / math.Sqrt(float64(len(pa))*float64(len(pb)))
}

// policyFactor scores the compatibility of two peering policies.
func policyFactor(a, b topology.PeeringPolicy) float64 {
	if a == topology.PolicyRestrictive || b == topology.PolicyRestrictive {
		return 0.1
	}
	if a == topology.PolicyOpen && b == topology.PolicyOpen {
		return 1.0
	}
	if a == topology.PolicyOpen || b == topology.PolicyOpen {
		return 0.8
	}
	return 0.5
}

// typeFactor boosts complementary pairs: content providers court eyeballs.
func typeFactor(a, b topology.ASType) float64 {
	giant := func(t topology.ASType) bool {
		return t == topology.Hypergiant || t == topology.Cloud
	}
	switch {
	case giant(a) && b == topology.Eyeball, giant(b) && a == topology.Eyeball:
		return 1.6
	case giant(a) && b == topology.Transit, giant(b) && a == topology.Transit:
		return 1.1
	case a == topology.Eyeball && b == topology.Eyeball:
		return 0.6
	case giant(a) && giant(b):
		return 0.9
	default:
		return 0.4
	}
}

// Score rates the likelihood that a and b privately interconnect. The
// collaborative core is Adamic–Adar common-neighbor affinity over the
// observed graph ("my look-alikes already connect to you, through partners
// that are selective enough to be informative") plus the direct cosine of
// the two partner sets, modulated by policy compatibility, type
// complementarity, user weight, and facility co-presence. A raw
// cosine-similarity sum would over-rank pairs whose partners are low-degree
// stubs; Adamic–Adar's 1/log(degree) weighting avoids that degree bias.
func (r *Recommender) Score(a, b topology.ASN) (float64, int) {
	if a == b {
		return 0, 0
	}
	shared := r.top.SharedFacilities(a, b)
	if len(shared) == 0 {
		return 0, 0
	}
	ra, rb := r.reg.Records[a], r.reg.Records[b]
	if ra == nil || rb == nil {
		return 0, len(shared)
	}
	pa, pb := r.partners[a], r.partners[b]
	if len(pb) < len(pa) {
		pa, pb = pb, pa
	}
	aa := 0.0
	for _, c := range order.Keys(pa) {
		if c == a || c == b || !pb[c] {
			continue
		}
		aa += 1 / math.Log(1+float64(len(r.partners[c])))
	}
	cf := aa + r.similarity(a, b)
	if cf == 0 {
		return 0, len(shared)
	}
	userBoost := 1 + math.Log1p((ra.UserWeight+rb.UserWeight)/1e6)
	facBoost := 1 + 0.08*float64(len(shared)-1)
	score := cf * policyFactor(ra.Policy, rb.Policy) * typeFactor(ra.Type, rb.Type) *
		userBoost * facBoost
	return score, len(shared)
}

// Recommend returns the top candidate links (pairs co-present at a facility
// and not already observed), by descending score.
func (r *Recommender) Recommend(limit int) []Candidate {
	// Index co-presence by facility to avoid the full quadratic pass.
	byFac := map[topology.FacilityID][]topology.ASN{}
	for _, asn := range r.top.ASNs() {
		for _, f := range r.top.ASes[asn].Facilities {
			byFac[f] = append(byFac[f], asn)
		}
	}
	seen := map[topology.LinkKey]bool{}
	var cands []Candidate
	var facs []topology.FacilityID
	for f := range byFac {
		facs = append(facs, f)
	}
	sort.Slice(facs, func(i, j int) bool { return facs[i] < facs[j] })
	for _, f := range facs {
		members := byFac[f]
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] == members[j] {
					continue
				}
				lk := topology.MakeLinkKey(members[i], members[j])
				if seen[lk] || r.observed[lk] {
					continue
				}
				seen[lk] = true
				score, shared := r.Score(lk.Lo, lk.Hi)
				if score <= 0 {
					continue
				}
				cands = append(cands, Candidate{
					A: lk.Lo, B: lk.Hi, Score: score, SharedFacilities: shared,
				})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].A != cands[j].A {
			return cands[i].A < cands[j].A
		}
		return cands[i].B < cands[j].B
	})
	if limit > 0 && len(cands) > limit {
		cands = cands[:limit]
	}
	return cands
}

// Eval summarizes recommendation quality against the true topology.
type Eval struct {
	K          int
	PrecisionK float64
	RecallK    float64
	// HiddenLinks is the number of true links absent from the observed
	// set (the recall denominator).
	HiddenLinks int
}

// Evaluate computes precision@k and recall@k of the candidates against the
// true (hidden) links of the full topology.
func Evaluate(top *topology.Topology, observed map[topology.LinkKey]bool, cands []Candidate, k int) Eval {
	truth := map[topology.LinkKey]bool{}
	for _, l := range top.Links() {
		lk := topology.MakeLinkKey(l.A, l.B)
		if !observed[lk] {
			truth[lk] = true
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	hits := 0
	for _, c := range cands[:k] {
		if truth[topology.MakeLinkKey(c.A, c.B)] {
			hits++
		}
	}
	ev := Eval{K: k, HiddenLinks: len(truth)}
	if k > 0 {
		ev.PrecisionK = float64(hits) / float64(k)
	}
	if len(truth) > 0 {
		ev.RecallK = float64(hits) / float64(len(truth))
	}
	return ev
}
