package peering

import (
	"testing"

	"itmap/internal/apnic"
	"itmap/internal/bgp"
	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func setup(t testing.TB, seed int64) (*world.World, *Registry, map[topology.LinkKey]bool) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	est := apnic.Estimate(w.Top, w.Users, apnic.DefaultConfig(), randx.New(seed))
	reg := BuildRegistry(w.Top, est)
	col := &bgp.Collector{Peers: bgp.DefaultCollectorPeers(w.Top, randx.New(seed+1))}
	observed := col.ObservedLinks(w.Paths)
	return w, reg, observed
}

func TestRegistryComplete(t *testing.T) {
	w, reg, _ := setup(t, 1)
	if len(reg.Records) != w.Top.NumASes() {
		t.Fatalf("registry has %d records for %d ASes", len(reg.Records), w.Top.NumASes())
	}
	for asn, rec := range reg.Records {
		a := w.Top.ASes[asn]
		if rec.Type != a.Type || rec.Policy != a.Policy {
			t.Fatalf("record mismatch for AS %d", asn)
		}
	}
}

func TestRecommendationsAreCandidates(t *testing.T) {
	w, reg, observed := setup(t, 2)
	rec := NewRecommender(w.Top, reg, observed)
	cands := rec.Recommend(200)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		if observed[topology.MakeLinkKey(c.A, c.B)] {
			t.Fatalf("candidate %d-%d already observed", c.A, c.B)
		}
		if c.SharedFacilities < 1 {
			t.Fatalf("candidate %d-%d shares no facility", c.A, c.B)
		}
		if i > 0 && cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates not sorted by score")
		}
	}
}

func TestPrecisionBeatsRandom(t *testing.T) {
	w, reg, observed := setup(t, 3)
	rec := NewRecommender(w.Top, reg, observed)
	cands := rec.Recommend(0)
	if len(cands) < 50 {
		t.Fatalf("only %d candidates", len(cands))
	}
	k := 50
	ev := Evaluate(w.Top, observed, cands, k)
	if ev.HiddenLinks == 0 {
		t.Fatal("nothing hidden — collector saw everything?")
	}
	// Random baseline: hidden links / co-located unlinked pairs. The
	// recommender must beat it clearly.
	randomPrec := float64(ev.HiddenLinks) / float64(len(cands))
	if ev.PrecisionK < 2*randomPrec {
		t.Errorf("precision@%d = %.3f, random = %.3f; no lift", k, ev.PrecisionK, randomPrec)
	}
}

func TestHiddenGiantPeeringsRecovered(t *testing.T) {
	w, reg, observed := setup(t, 4)
	rec := NewRecommender(w.Top, reg, observed)
	cands := rec.Recommend(0)
	recommended := map[topology.LinkKey]bool{}
	for _, c := range cands[:min(len(cands), 400)] {
		recommended[topology.MakeLinkKey(c.A, c.B)] = true
	}
	var hidden, hit int
	for _, l := range w.Top.Links() {
		lk := topology.MakeLinkKey(l.A, l.B)
		if observed[lk] || l.RelAB != topology.RelPeer {
			continue
		}
		ta, tb := w.Top.ASes[l.A].Type, w.Top.ASes[l.B].Type
		giantEyeball := (ta == topology.Hypergiant && tb == topology.Eyeball) ||
			(tb == topology.Hypergiant && ta == topology.Eyeball)
		if !giantEyeball {
			continue
		}
		hidden++
		if recommended[lk] {
			hit++
		}
	}
	if hidden == 0 {
		t.Skip("no hidden giant-eyeball peerings")
	}
	if frac := float64(hit) / float64(hidden); frac < 0.4 {
		t.Errorf("recovered only %.0f%% of hidden giant-eyeball peerings", frac*100)
	}
}

func TestScoreZeroWithoutCoPresence(t *testing.T) {
	w, reg, observed := setup(t, 5)
	rec := NewRecommender(w.Top, reg, observed)
	// Find two ASes with no shared facility.
	asns := w.Top.ASNs()
	for _, a := range asns {
		for _, b := range asns {
			if a >= b || len(w.Top.SharedFacilities(a, b)) > 0 {
				continue
			}
			if score, shared := rec.Score(a, b); score != 0 || shared != 0 {
				t.Fatalf("non-colocated pair scored %f", score)
			}
			return
		}
	}
	t.Skip("every pair shares a facility")
}

func TestEvaluateEdgeCases(t *testing.T) {
	w, _, observed := setup(t, 6)
	ev := Evaluate(w.Top, observed, nil, 10)
	if ev.PrecisionK != 0 || ev.RecallK != 0 {
		t.Error("empty candidate list should score 0")
	}
}
