// Package cachesim simulates edge caches (the off-net boxes hypergiants
// place inside eyeball networks) under realistic request streams. It backs
// the §3.2.3 proposal that "a community-driven project could host caches
// inside research networks/universities, to measure the cache hit rate
// under normal operation and during flash events": the simulator produces
// those hit rates, and the Che approximation provides an analytic
// cross-check of the LRU model.
package cachesim

import (
	"math"

	"itmap/internal/randx"
)

// LRU is a classic least-recently-used object cache.
type LRU struct {
	capacity int
	items    map[uint64]*node
	head     *node // most recent
	tail     *node // least recent

	hits, misses int64
}

type node struct {
	key        uint64
	prev, next *node
}

// NewLRU builds a cache holding up to capacity objects. It panics if
// capacity < 1.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic("cachesim: capacity must be >= 1")
	}
	return &LRU{capacity: capacity, items: make(map[uint64]*node, capacity)}
}

// Len returns the number of cached objects.
func (c *LRU) Len() int { return len(c.items) }

// Capacity returns the configured capacity.
func (c *LRU) Capacity() int { return c.capacity }

// Stats returns the (hits, misses) counters since creation or Reset.
func (c *LRU) Stats() (hits, misses int64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), or 0 before any request.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears the hit/miss counters but keeps cache contents.
func (c *LRU) Reset() { c.hits, c.misses = 0, 0 }

// Request serves one object request: on a hit the object moves to the
// front; on a miss it is inserted, evicting the least-recently-used object
// if the cache is full. Returns whether it was a hit.
func (c *LRU) Request(key uint64) bool {
	if n, ok := c.items[key]; ok {
		c.hits++
		c.moveToFront(n)
		return true
	}
	c.misses++
	n := &node{key: key}
	c.items[key] = n
	c.pushFront(n)
	if len(c.items) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.key)
	}
	return false
}

// Contains reports whether the key is cached, without touching recency.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

func (c *LRU) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// Workload generates object requests.
type Workload interface {
	// Next draws the next requested object id.
	Next(rng *randx.Source) uint64
}

// ZipfWorkload requests objects 1..Catalog with Zipf(alpha) popularity —
// the independent reference model for VOD/web catalogs.
type ZipfWorkload struct {
	z *randx.Zipf
}

// NewZipfWorkload builds a Zipf workload over a catalog.
func NewZipfWorkload(catalog int, alpha float64) *ZipfWorkload {
	return &ZipfWorkload{z: randx.NewZipf(catalog, alpha)}
}

// Next implements Workload.
func (w *ZipfWorkload) Next(rng *randx.Source) uint64 {
	return uint64(w.z.Sample(rng))
}

// Weights returns the normalized popularity of each object (1-based index
// shifted to 0-based).
func (w *ZipfWorkload) Weights() []float64 {
	out := make([]float64, w.z.N())
	for k := 1; k <= w.z.N(); k++ {
		out[k-1] = w.z.Weight(k)
	}
	return out
}

// FlashWorkload models a flash event: a share of all requests concentrates
// on one hot object (a live event, a viral clip) on top of a base workload.
type FlashWorkload struct {
	Base     Workload
	HotKey   uint64
	HotShare float64
}

// Next implements Workload.
func (w *FlashWorkload) Next(rng *randx.Source) uint64 {
	if rng.Bool(w.HotShare) {
		return w.HotKey
	}
	return w.Base.Next(rng)
}

// MeasureHitRate drives n requests (after warm requests of cache warm-up)
// through the cache and returns the steady-state hit rate.
func MeasureHitRate(c *LRU, w Workload, rng *randx.Source, warm, n int) float64 {
	for i := 0; i < warm; i++ {
		c.Request(w.Next(rng))
	}
	c.Reset()
	for i := 0; i < n; i++ {
		c.Request(w.Next(rng))
	}
	return c.HitRate()
}

// CheHitRate computes the Che approximation of an LRU cache's hit rate
// under the independent reference model: the characteristic time T solves
// sum_i (1 - exp(-p_i * T)) = capacity, and the hit rate is
// sum_i p_i * (1 - exp(-p_i * T)).
func CheHitRate(capacity int, weights []float64) float64 {
	if capacity >= len(weights) {
		return 1
	}
	occupied := func(t float64) float64 {
		total := 0.0
		for _, p := range weights {
			total += 1 - math.Exp(-p*t)
		}
		return total
	}
	lo, hi := 0.0, 1.0
	for occupied(hi) < float64(capacity) {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if occupied(mid) < float64(capacity) {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	hit := 0.0
	for _, p := range weights {
		hit += p * (1 - math.Exp(-p*t))
	}
	return hit
}
