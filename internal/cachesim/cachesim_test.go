package cachesim

import (
	"math"
	"testing"
	"testing/quick"

	"itmap/internal/randx"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(2)
	if c.Request(1) {
		t.Error("first request hit")
	}
	if !c.Request(1) {
		t.Error("second request missed")
	}
	c.Request(2)
	c.Request(3) // evicts 1 (LRU), keeps 2? no: after Request(1),1 is MRU... order: 1 hit -> 1 MRU; insert 2 -> 2 MRU; insert 3 -> evict 1
	if c.Contains(1) {
		t.Error("LRU item not evicted")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("recent items evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len %d", c.Len())
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c := NewLRU(3)
	c.Request(1)
	c.Request(2)
	c.Request(3)
	c.Request(1) // 1 becomes MRU; order now 1,3,2
	c.Request(4) // evicts 2
	if c.Contains(2) {
		t.Error("expected 2 evicted")
	}
	for _, k := range []uint64{1, 3, 4} {
		if !c.Contains(k) {
			t.Errorf("expected %d cached", k)
		}
	}
}

func TestLRUCapacityInvariant(t *testing.T) {
	f := func(keys []uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		c := NewLRU(capacity)
		for _, k := range keys {
			c.Request(uint64(k % 64))
			if c.Len() > capacity {
				return false
			}
		}
		hits, misses := c.Stats()
		return hits+misses == int64(len(keys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUSingleSlot(t *testing.T) {
	c := NewLRU(1)
	c.Request(1)
	c.Request(2)
	if c.Contains(1) || !c.Contains(2) || c.Len() != 1 {
		t.Error("single-slot cache misbehaved")
	}
}

func TestNewLRUPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLRU(0)
}

func TestZipfWorkloadMatchesChe(t *testing.T) {
	rng := randx.New(1)
	w := NewZipfWorkload(2000, 0.9)
	for _, capacity := range []int{50, 200, 800} {
		c := NewLRU(capacity)
		sim := MeasureHitRate(c, w, rng, 40000, 200000)
		che := CheHitRate(capacity, w.Weights())
		if math.Abs(sim-che) > 0.03 {
			t.Errorf("capacity %d: simulated %.3f vs Che %.3f", capacity, sim, che)
		}
	}
}

func TestHitRateGrowsWithCapacity(t *testing.T) {
	rng := randx.New(2)
	w := NewZipfWorkload(1000, 1.0)
	prev := -1.0
	for _, capacity := range []int{10, 50, 250, 1000} {
		hr := MeasureHitRate(NewLRU(capacity), w, rng, 20000, 80000)
		if hr < prev-0.02 {
			t.Errorf("hit rate fell with capacity: %.3f after %.3f", hr, prev)
		}
		prev = hr
	}
	if prev < 0.95 {
		t.Errorf("catalog-sized cache hit rate %.3f, want ~1", prev)
	}
}

func TestFlashEventRaisesHitRate(t *testing.T) {
	rng := randx.New(3)
	base := NewZipfWorkload(5000, 0.8)
	normal := MeasureHitRate(NewLRU(100), base, rng, 30000, 120000)
	flash := &FlashWorkload{Base: base, HotKey: 999999, HotShare: 0.6}
	during := MeasureHitRate(NewLRU(100), flash, rng, 30000, 120000)
	if during <= normal+0.2 {
		t.Errorf("flash event hit rate %.3f vs normal %.3f; one hot object should cache perfectly",
			during, normal)
	}
}

func TestCheEdgeCases(t *testing.T) {
	w := NewZipfWorkload(100, 1.0)
	if got := CheHitRate(100, w.Weights()); got != 1 {
		t.Errorf("cache >= catalog should hit 100%%, got %f", got)
	}
	if got := CheHitRate(150, w.Weights()); got != 1 {
		t.Errorf("oversized cache should hit 100%%, got %f", got)
	}
	small := CheHitRate(1, w.Weights())
	if small <= 0 || small >= 0.5 {
		t.Errorf("1-slot Che hit rate %f implausible", small)
	}
}

func BenchmarkLRURequest(b *testing.B) {
	c := NewLRU(10000)
	rng := randx.New(1)
	w := NewZipfWorkload(100000, 0.9)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = w.Next(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(keys[i&(1<<16-1)])
	}
}
