package volreports

import (
	"sort"
	"testing"

	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/world"
)

func TestCalibrationFromPerfectActivity(t *testing.T) {
	w := world.Build(world.Tiny(1))
	mx := w.Traffic.BuildMatrix()
	// Perfect relative activity: the truth itself, scaled arbitrarily.
	activity := map[topology.ASN]float64{}
	for asn, b := range mx.ClientASBytes {
		activity[asn] = b / 1e9
	}
	// Three contributors, mild reporting noise.
	contributors := topContributors(w, mx, 3)
	var reports []Report
	for _, asn := range contributors {
		reports = append(reports, Contribute(mx, asn, 0, 0.10, 7))
	}
	c := Calibrate(activity, reports)
	if c.Contributors != 3 {
		t.Fatalf("contributors %d", c.Contributors)
	}
	ev := Evaluate(c, activity, mx)
	if ev.MedianAPE > 0.15 {
		t.Errorf("median APE %.2f with perfect relative activity", ev.MedianAPE)
	}
	if ev.Covered < 20 {
		t.Errorf("only %d ASes covered", ev.Covered)
	}
}

func TestMoreContributorsHelp(t *testing.T) {
	w := world.Build(world.Tiny(2))
	mx := w.Traffic.BuildMatrix()
	// Noisy relative activity (a realistic map).
	activity := map[topology.ASN]float64{}
	i := 0
	for asn, b := range mx.ClientASBytes {
		f := 0.6
		if i%3 == 0 {
			f = 1.5
		}
		activity[asn] = b * f
		i++
	}
	cands := topContributors(w, mx, 12)
	evalWith := func(n int) float64 {
		var reports []Report
		for _, asn := range cands[:n] {
			reports = append(reports, Contribute(mx, asn, 0, 0.15, 3))
		}
		return Evaluate(Calibrate(activity, reports), activity, mx).MedianAPE
	}
	one := evalWith(1)
	many := evalWith(12)
	if many > one+0.05 {
		t.Errorf("12 contributors (APE %.2f) worse than 1 (%.2f)", many, one)
	}
}

func TestCalibrateEdgeCases(t *testing.T) {
	c := Calibrate(nil, nil)
	if c.BytesPerUnit != 0 || c.Contributors != 0 {
		t.Error("empty calibration not zero")
	}
	// Reports for unknown ASes are ignored.
	c = Calibrate(map[topology.ASN]float64{1: 10}, []Report{{ASN: 99, TotalBytes: 5}})
	if c.Contributors != 0 {
		t.Error("unknown-AS report used")
	}
	empty := &traffic.Matrix{ClientASBytes: map[topology.ASN]float64{}}
	if ev := Evaluate(c, nil, empty); ev.Covered != 0 {
		t.Error("empty evaluation not zero")
	}
}

// topContributors returns the n largest client ASes by true volume — the
// networks most likely to run measurement-friendly operations.
func topContributors(w *world.World, mx *traffic.Matrix, n int) []topology.ASN {
	type row struct {
		asn topology.ASN
		b   float64
	}
	var rows []row
	for asn, b := range mx.ClientASBytes {
		rows = append(rows, row{asn, b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].b != rows[j].b {
			return rows[i].b > rows[j].b
		}
		return rows[i].asn < rows[j].asn
	})
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]topology.ASN, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].asn
	}
	return out
}
