// Package volreports models the §4 call to action: "we envision members of
// the research and operator community making available ... aggregated
// volume reports of networks". A contributing operator publishes its
// network's total daily volume (with reporting noise); a handful of such
// reports calibrates the map's *relative* activity estimates into
// *absolute* volumes for every network — turning "prefix1 has twice the
// activity of prefix2" into bytes.
package volreports

import (
	"sort"

	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// Report is one operator's contributed aggregate.
type Report struct {
	ASN topology.ASN
	Day int
	// TotalBytes is the network's self-reported daily client traffic.
	TotalBytes float64
}

// Contribute produces a network's report from its (privately known) ground
// truth, with multiplicative reporting noise — operators bill in 95th
// percentiles and round, they do not publish exact byte counts.
func Contribute(mx *traffic.Matrix, asn topology.ASN, day int, noiseSigma float64, seed int64) Report {
	truth := mx.ClientASBytes[asn]
	noise := randx.HashLognormal(0, noiseSigma, uint64(seed), 0x60e, uint64(asn), uint64(day))
	return Report{ASN: asn, Day: day, TotalBytes: truth * noise}
}

// Calibration converts relative activity units into bytes/day.
type Calibration struct {
	// BytesPerUnit is the median ratio of reported bytes to map
	// activity across contributors.
	BytesPerUnit float64
	// Contributors is how many reports informed the calibration.
	Contributors int
}

// Calibrate fits the scale factor from contributed reports against the
// map's per-AS activity estimates. The median ratio is robust to a minority
// of bad reports or bad estimates.
func Calibrate(activity map[topology.ASN]float64, reports []Report) Calibration {
	var ratios []float64
	for _, r := range reports {
		if act := activity[r.ASN]; act > 0 && r.TotalBytes > 0 {
			ratios = append(ratios, r.TotalBytes/act)
		}
	}
	if len(ratios) == 0 {
		return Calibration{}
	}
	sort.Float64s(ratios)
	return Calibration{BytesPerUnit: ratios[len(ratios)/2], Contributors: len(ratios)}
}

// AbsoluteVolume converts one AS's relative activity into bytes/day.
func (c Calibration) AbsoluteVolume(activity float64) float64 {
	return activity * c.BytesPerUnit
}

// Eval scores calibrated absolute estimates against ground truth.
type Eval struct {
	// MedianAPE is the median absolute percentage error across ASes with
	// both an estimate and truth.
	MedianAPE float64
	// Covered is the number of ASes evaluated.
	Covered int
}

// Evaluate compares calibrated volumes with the true per-AS client bytes.
func Evaluate(c Calibration, activity map[topology.ASN]float64, mx *traffic.Matrix) Eval {
	var apes []float64
	for asn, act := range activity {
		truth := mx.ClientASBytes[asn]
		if truth <= 0 {
			continue
		}
		est := c.AbsoluteVolume(act)
		ape := est/truth - 1
		if ape < 0 {
			ape = -ape
		}
		apes = append(apes, ape)
	}
	if len(apes) == 0 {
		return Eval{}
	}
	sort.Float64s(apes)
	return Eval{MedianAPE: apes[len(apes)/2], Covered: len(apes)}
}
