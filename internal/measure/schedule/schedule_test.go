package schedule

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRealisticDailySweep(t *testing.T) {
	// The paper's scale: 8.8M /24s × 10 domains, 100 QPS per prober,
	// 20 probers, daily refresh.
	c := Campaign{
		Targets:      8_800_000 * 10,
		Rounds:       1,
		QPSPerProber: 100,
		Probers:      20,
		WindowHours:  24,
	}
	p, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Errorf("paper-scale daily sweep infeasible: %.1f h", p.SweepHours)
	}
	if p.SweepHours < 10 || p.SweepHours > 14 {
		t.Errorf("sweep hours %.1f, want ~12.2", p.SweepHours)
	}
}

func TestHourlyPrecisionNeedsMoreProbers(t *testing.T) {
	base := Campaign{
		Targets:      8_800_000,
		Rounds:       1,
		QPSPerProber: 100,
		Probers:      5,
		WindowHours:  1,
	}
	p, err := base.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Fatal("hourly full sweep with 5 probers should not fit")
	}
	if p.ProbersNeeded <= base.Probers {
		t.Fatalf("ProbersNeeded %d not above current %d", p.ProbersNeeded, base.Probers)
	}
	// Using the suggested prober count makes it (just) feasible.
	base.Probers = p.ProbersNeeded
	p2, err := base.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Feasible {
		t.Errorf("ProbersNeeded=%d still infeasible (%.2f h)", base.Probers, p2.SweepHours)
	}
}

func TestMaxTargetsConsistent(t *testing.T) {
	c := Campaign{Targets: 1000, Rounds: 4, QPSPerProber: 10, Probers: 2, WindowHours: 2}
	p, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// A campaign at exactly MaxTargetsInWindow fits.
	c.Targets = p.MaxTargetsInWindow
	p2, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Feasible {
		t.Errorf("MaxTargetsInWindow=%d does not fit (%.3f h window %.1f)",
			c.Targets, p2.SweepHours, c.WindowHours)
	}
	// One percent more does not.
	c.Targets = p.MaxTargetsInWindow + p.MaxTargetsInWindow/100 + 1
	p3, _ := c.Fit()
	if p3.Feasible {
		t.Error("exceeding MaxTargetsInWindow still feasible")
	}
}

func TestInterleaveSpreadsWindow(t *testing.T) {
	c := Campaign{Targets: 3600, Rounds: 1, QPSPerProber: 1, Probers: 1, WindowHours: 2}
	gap, err := c.Interleave()
	if err != nil {
		t.Fatal(err)
	}
	// 3600 probes at 1 QPS = exactly 1 hour of probing; spread over the
	// sweep duration the gap is 1s.
	if math.Abs(gap-1) > 1e-9 {
		t.Errorf("gap %.3f s, want 1", gap)
	}
}

func TestValidation(t *testing.T) {
	bad := []Campaign{
		{},
		{Targets: 1, Rounds: 0, QPSPerProber: 1, Probers: 1, WindowHours: 1},
		{Targets: 1, Rounds: 1, QPSPerProber: 0, Probers: 1, WindowHours: 1},
		{Targets: 1, Rounds: 1, QPSPerProber: 1, Probers: 0, WindowHours: 1},
		{Targets: 1, Rounds: 1, QPSPerProber: 1, Probers: 1},
	}
	for i, c := range bad {
		if _, err := c.Fit(); err == nil {
			t.Errorf("case %d: invalid campaign accepted", i)
		}
	}
}

func TestFitProperties(t *testing.T) {
	f := func(targets uint16, rounds, probers uint8, qps uint8, window uint8) bool {
		c := Campaign{
			Targets:      int(targets%5000) + 1,
			Rounds:       int(rounds%8) + 1,
			QPSPerProber: float64(qps%50) + 1,
			Probers:      int(probers%16) + 1,
			WindowHours:  float64(window%48) + 1,
		}
		p, err := c.Fit()
		if err != nil {
			return false
		}
		// Feasibility must agree with the sweep/window comparison, and
		// doubling probers never makes it slower.
		if p.Feasible != (p.SweepHours <= c.WindowHours) {
			return false
		}
		c2 := c
		c2.Probers *= 2
		p2, _ := c2.Fit()
		return p2.SweepHours <= p.SweepHours+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInflationFactor(t *testing.T) {
	cases := []struct {
		name   string
		loss   float64
		budget int
		want   float64
	}{
		{"no loss", 0, 5, 1},
		{"no retries", 0.3, 1, 1},
		{"zero budget means one attempt", 0.3, 0, 1},
		{"mild loss", 0.1, 3, 1 + 0.1 + 0.01},
		{"hostile loss", 0.3, 4, 1 + 0.3 + 0.09 + 0.027},
		{"deep budget approaches 1/(1-p)", 0.5, 30, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Campaign{
				Targets: 1000, Rounds: 2, QPSPerProber: 10, Probers: 2,
				WindowHours: 24, LossRate: tc.loss, RetryBudget: tc.budget,
			}
			if got := c.Inflation(); math.Abs(got-tc.want) > 1e-6 {
				t.Fatalf("Inflation() = %f, want %f", got, tc.want)
			}
			p, err := c.Fit()
			if err != nil {
				t.Fatal(err)
			}
			wantEff := int(math.Ceil(float64(p.TotalProbes) * tc.want))
			if p.EffectiveProbes != wantEff {
				t.Fatalf("EffectiveProbes = %d, want %d", p.EffectiveProbes, wantEff)
			}
			// The clean planner must be untouched by the zero value.
			if tc.loss == 0 || tc.budget <= 1 {
				clean := c
				clean.LossRate, clean.RetryBudget = 0, 0
				pc, err := clean.Fit()
				if err != nil {
					t.Fatal(err)
				}
				if p != pc {
					t.Fatalf("zero-loss plan diverged: %+v vs %+v", p, pc)
				}
			}
		})
	}
}

func TestInflationScalesFeasibility(t *testing.T) {
	// A campaign near its window edge tips infeasible once loss-driven
	// retries inflate the budget.
	c := Campaign{Targets: 160_000, Rounds: 1, QPSPerProber: 1, Probers: 2, WindowHours: 24}
	p, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatalf("clean campaign should fit (%.2f h)", p.SweepHours)
	}
	c.LossRate, c.RetryBudget = 0.3, 5
	p2, err := c.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Feasible {
		t.Fatalf("inflated campaign should not fit (%.2f h, factor %.3f)", p2.SweepHours, p2.InflationFactor)
	}
	if p2.ProbersNeeded <= c.Probers {
		t.Fatalf("ProbersNeeded %d not above current %d", p2.ProbersNeeded, c.Probers)
	}
}
