// Package schedule plans measurement campaigns under real-world operational
// constraints. The paper's techniques all face rate limits — public
// resolvers throttle per-source queries, routers rate-limit ICMP — and a
// campaign is only as good as its ability to cover the target set within
// the temporal precision Table 1 asks for. The planner answers: with this
// probing budget, how long does a sweep take, does it fit in the refresh
// window, and if not, what has to give (probers, domains, or coverage)?
package schedule

import (
	"fmt"
	"math"
)

// Campaign describes a sweep to plan.
type Campaign struct {
	// Targets is the number of (prefix, domain) probe pairs per round.
	Targets int
	// Rounds is how many times per window each pair is probed.
	Rounds int
	// QPSPerProber is the per-source query budget the measured service
	// tolerates (public resolvers throttle single sources hard).
	QPSPerProber float64
	// Probers is the number of distinct vantage sources available.
	Probers int
	// WindowHours is the refresh window the sweep must fit in (Table 1's
	// temporal precision: 24 for daily, 1 for hourly).
	WindowHours float64
	// LossRate is the expected transient-failure probability per probe
	// (timeouts, SERVFAILs, throttles). A lossy substrate forces retries,
	// inflating the probe budget; zero means the pre-fault planner.
	LossRate float64
	// RetryBudget is the maximum attempts per target including the first
	// (default 1: no retries, lost probes stay lost).
	RetryBudget int
}

// Plan is the planner's verdict.
type Plan struct {
	TotalProbes int
	SweepHours  float64
	Feasible    bool
	// InflationFactor is the expected attempts per logical probe once
	// retries against the loss rate are accounted for (1 with no loss).
	InflationFactor float64
	// EffectiveProbes is TotalProbes scaled by the inflation factor — the
	// datagram count the rate limiter actually sees.
	EffectiveProbes int
	// UtilizedQPS is the aggregate probing rate used.
	UtilizedQPS float64
	// MaxTargetsInWindow is the largest target count that would fit.
	MaxTargetsInWindow int
	// ProbersNeeded is the minimum prober count that makes the campaign
	// feasible at the same QPS budget.
	ProbersNeeded int
}

// Validate reports configuration errors.
func (c Campaign) Validate() error {
	switch {
	case c.Targets <= 0:
		return fmt.Errorf("schedule: targets must be positive, got %d", c.Targets)
	case c.Rounds <= 0:
		return fmt.Errorf("schedule: rounds must be positive, got %d", c.Rounds)
	case c.QPSPerProber <= 0:
		return fmt.Errorf("schedule: per-prober QPS must be positive, got %f", c.QPSPerProber)
	case c.Probers <= 0:
		return fmt.Errorf("schedule: probers must be positive, got %d", c.Probers)
	case c.WindowHours <= 0:
		return fmt.Errorf("schedule: window must be positive, got %f", c.WindowHours)
	case c.LossRate < 0 || c.LossRate >= 1:
		return fmt.Errorf("schedule: loss rate must be in [0,1), got %f", c.LossRate)
	case c.RetryBudget < 0:
		return fmt.Errorf("schedule: retry budget must be non-negative, got %d", c.RetryBudget)
	default:
		return nil
	}
}

// Inflation returns the expected attempts per logical probe: with
// per-attempt loss p and a budget of B attempts, a prober stops at the
// first success, so E[attempts] = Σ_{k=0}^{B−1} p^k = (1−p^B)/(1−p).
// Zero loss (or a budget of 1) yields exactly 1 — the pre-fault planner.
func (c Campaign) Inflation() float64 {
	b := c.RetryBudget
	if b < 1 {
		b = 1
	}
	if c.LossRate <= 0 || b == 1 {
		return 1
	}
	return (1 - math.Pow(c.LossRate, float64(b))) / (1 - c.LossRate)
}

// Fit plans the campaign.
func (c Campaign) Fit() (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	var p Plan
	p.TotalProbes = c.Targets * c.Rounds
	p.InflationFactor = c.Inflation()
	eff := float64(p.TotalProbes) * p.InflationFactor
	p.EffectiveProbes = int(math.Ceil(eff))
	p.UtilizedQPS = c.QPSPerProber * float64(c.Probers)
	p.SweepHours = eff / p.UtilizedQPS / 3600
	p.Feasible = p.SweepHours <= c.WindowHours
	p.MaxTargetsInWindow = int(c.WindowHours * 3600 * p.UtilizedQPS / (float64(c.Rounds) * p.InflationFactor))
	p.ProbersNeeded = int(math.Ceil(eff / (c.WindowHours * 3600 * c.QPSPerProber)))
	return p, nil
}

// Interleave returns the per-pair probe interval (seconds) that spreads the
// sweep evenly over the window — probing in a burst both trips rate limits
// and samples every cache at the same diurnal phase, biasing hit rates.
func (c Campaign) Interleave() (float64, error) {
	p, err := c.Fit()
	if err != nil {
		return 0, err
	}
	hours := math.Min(p.SweepHours, c.WindowHours)
	if p.TotalProbes == 0 {
		return 0, nil
	}
	return hours * 3600 / float64(p.TotalProbes), nil
}
