// Package schedule plans measurement campaigns under real-world operational
// constraints. The paper's techniques all face rate limits — public
// resolvers throttle per-source queries, routers rate-limit ICMP — and a
// campaign is only as good as its ability to cover the target set within
// the temporal precision Table 1 asks for. The planner answers: with this
// probing budget, how long does a sweep take, does it fit in the refresh
// window, and if not, what has to give (probers, domains, or coverage)?
package schedule

import (
	"fmt"
	"math"
)

// Campaign describes a sweep to plan.
type Campaign struct {
	// Targets is the number of (prefix, domain) probe pairs per round.
	Targets int
	// Rounds is how many times per window each pair is probed.
	Rounds int
	// QPSPerProber is the per-source query budget the measured service
	// tolerates (public resolvers throttle single sources hard).
	QPSPerProber float64
	// Probers is the number of distinct vantage sources available.
	Probers int
	// WindowHours is the refresh window the sweep must fit in (Table 1's
	// temporal precision: 24 for daily, 1 for hourly).
	WindowHours float64
}

// Plan is the planner's verdict.
type Plan struct {
	TotalProbes int
	SweepHours  float64
	Feasible    bool
	// UtilizedQPS is the aggregate probing rate used.
	UtilizedQPS float64
	// MaxTargetsInWindow is the largest target count that would fit.
	MaxTargetsInWindow int
	// ProbersNeeded is the minimum prober count that makes the campaign
	// feasible at the same QPS budget.
	ProbersNeeded int
}

// Validate reports configuration errors.
func (c Campaign) Validate() error {
	switch {
	case c.Targets <= 0:
		return fmt.Errorf("schedule: targets must be positive, got %d", c.Targets)
	case c.Rounds <= 0:
		return fmt.Errorf("schedule: rounds must be positive, got %d", c.Rounds)
	case c.QPSPerProber <= 0:
		return fmt.Errorf("schedule: per-prober QPS must be positive, got %f", c.QPSPerProber)
	case c.Probers <= 0:
		return fmt.Errorf("schedule: probers must be positive, got %d", c.Probers)
	case c.WindowHours <= 0:
		return fmt.Errorf("schedule: window must be positive, got %f", c.WindowHours)
	default:
		return nil
	}
}

// Fit plans the campaign.
func (c Campaign) Fit() (Plan, error) {
	if err := c.Validate(); err != nil {
		return Plan{}, err
	}
	var p Plan
	p.TotalProbes = c.Targets * c.Rounds
	p.UtilizedQPS = c.QPSPerProber * float64(c.Probers)
	p.SweepHours = float64(p.TotalProbes) / p.UtilizedQPS / 3600
	p.Feasible = p.SweepHours <= c.WindowHours
	p.MaxTargetsInWindow = int(c.WindowHours * 3600 * p.UtilizedQPS / float64(c.Rounds))
	p.ProbersNeeded = int(math.Ceil(float64(p.TotalProbes) / (c.WindowHours * 3600 * c.QPSPerProber)))
	return p, nil
}

// Interleave returns the per-pair probe interval (seconds) that spreads the
// sweep evenly over the window — probing in a burst both trips rate limits
// and samples every cache at the same diurnal phase, biasing hit rates.
func (c Campaign) Interleave() (float64, error) {
	p, err := c.Fit()
	if err != nil {
		return 0, err
	}
	hours := math.Min(p.SweepHours, c.WindowHours)
	if p.TotalProbes == 0 {
		return 0, nil
	}
	return hours * 3600 / float64(p.TotalProbes), nil
}
