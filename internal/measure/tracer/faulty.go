package tracer

import (
	"itmap/internal/bgp"
	"itmap/internal/faults"
	"itmap/internal/randx"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// Hole marks a hop whose TTL-exceeded reply a router's ICMP rate limiter
// ate — the `* * *` line of a real traceroute. ASN 0 is never allocated by
// the topology generator, so the sentinel cannot collide with a real hop.
const Hole topology.ASN = 0

// TracerouteFaulty is Traceroute against a fault plan: each hop's reply is
// independently subject to the per-router ICMP rate limiter, and suppressed
// hops appear as Hole. With a nil or inert plan the result is identical to
// Traceroute. attempt re-rolls the per-hop coins, so re-running a traceroute
// later (or as a retry) genuinely re-measures.
func TracerouteFaulty(ap *bgp.AllPaths, src, dst topology.ASN, pl *faults.Plan, attempt int, t simtime.Time) []topology.ASN {
	path := ap.Path(src, dst)
	if path == nil || !pl.Enabled() {
		return path
	}
	key := randx.Hash64(uint64(src), uint64(dst))
	out := make([]topology.ASN, len(path))
	for i, hop := range path {
		if pl.ICMPDropped(uint64(hop), randx.Hash64(key, uint64(i)), attempt, t) {
			out[i] = Hole
			continue
		}
		out[i] = hop
	}
	return out
}

// Complete reports whether a measured path has no holes.
func Complete(path []topology.ASN) bool {
	for _, hop := range path {
		if hop == Hole {
			return false
		}
	}
	return true
}

// TraceStats counts the work and the casualties of a resilient traceroute
// campaign.
type TraceStats struct {
	// Traceroutes counts traceroutes actually issued (including retries).
	Traceroutes int
	// Retries counts re-measurements after an incomplete path.
	Retries int
	// GaveUp counts (vp, target) pairs still holed after the retry budget.
	GaveUp int
	// Attempts records traceroutes issued per (vp, target) pair.
	Attempts map[[2]topology.ASN]int
}

func (ts *TraceStats) merge(o *TraceStats) {
	ts.Traceroutes += o.Traceroutes
	ts.Retries += o.Retries
	ts.GaveUp += o.GaveUp
	for k, v := range o.Attempts {
		ts.Attempts[k] += v
	}
}

// ResilientTracer re-measures holed paths with backoff until they come back
// complete or the retry budget dies; whatever links survive around the
// remaining holes are still harvested (a hole only hides its own two
// adjacencies, not the rest of the path).
type ResilientTracer struct {
	Plan  *faults.Plan
	Retry resilience.Retryer
}

// trace measures src→dst at start, retrying while holes remain. It returns
// the best (fewest-holes) path seen and whether a complete one was obtained.
func (rt *ResilientTracer) trace(ap *bgp.AllPaths, src, dst topology.ASN, start simtime.Time, st *TraceStats) ([]topology.ASN, bool) {
	var best []topology.ASN
	bestHoles := -1
	key := randx.Hash64(uint64(src), uint64(dst))
	out := rt.Retry.Do(start, key, func(attempt int, at simtime.Time) error {
		path := TracerouteFaulty(ap, src, dst, rt.Plan, attempt, at)
		if path == nil {
			return nil // unreachable is an answer, not a fault
		}
		st.Traceroutes++
		if attempt > 0 {
			st.Retries++
		}
		holes := 0
		for _, hop := range path {
			if hop == Hole {
				holes++
			}
		}
		if bestHoles < 0 || holes < bestHoles {
			best, bestHoles = path, holes
		}
		if holes > 0 {
			return faults.ErrTimeout
		}
		return nil
	})
	st.Attempts[[2]topology.ASN{src, dst}] += out.Attempts
	return best, out.Err == nil
}

// Campaign is Campaign under faults: forward traceroutes from every vantage
// point to every target, re-measuring holed paths. Links adjacent to
// unresolved holes are lost; everything else is harvested.
func (rt *ResilientTracer) Campaign(ap *bgp.AllPaths, vps []VantagePoint, targets []topology.ASN, start simtime.Time) (map[topology.LinkKey]bool, *TraceStats) {
	links := map[topology.LinkKey]bool{}
	st := &TraceStats{Attempts: map[[2]topology.ASN]int{}}
	for _, vp := range vps {
		for _, dst := range targets {
			path, ok := rt.trace(ap, vp.AS, dst, start, st)
			if !ok {
				st.GaveUp++
			}
			LinksOnPath(links, path)
		}
	}
	return links, st
}

// NaiveCampaign measures each pair exactly once with no retries — the
// baseline the resilient campaign is judged against. Holes silently cost
// their adjacent links.
func NaiveCampaign(ap *bgp.AllPaths, vps []VantagePoint, targets []topology.ASN, pl *faults.Plan, start simtime.Time) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	for _, vp := range vps {
		for _, dst := range targets {
			LinksOnPath(links, TracerouteFaulty(ap, vp.AS, dst, pl, 0, start))
		}
	}
	return links
}
