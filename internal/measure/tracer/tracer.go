// Package tracer models active path measurement: traceroutes from vantage
// points (the simulator's RIPE-Atlas/PlanetLab stand-ins in academic and
// volunteer eyeball networks), Reverse Traceroute, and measurement
// campaigns from cloud VMs — the §3.3.2 toolbox for uncovering links that
// route collectors miss.
package tracer

import (
	"sort"

	"itmap/internal/bgp"
	"itmap/internal/randx"
	"itmap/internal/topology"
)

// VantagePoint is a host able to issue traceroutes.
type VantagePoint struct {
	AS   topology.ASN
	Name string
}

// AtlasVPs returns a realistic distributed vantage set: every academic AS
// plus a broad sample of volunteer home networks — like RIPE Atlas, the
// majority of probes sit in eyeball ASes.
func AtlasVPs(top *topology.Topology, rng *randx.Source) []VantagePoint {
	var vps []VantagePoint
	for _, asn := range top.ASesOfType(topology.Academic) {
		vps = append(vps, VantagePoint{AS: asn, Name: top.ASes[asn].Name})
	}
	for _, asn := range top.ASesOfType(topology.Eyeball) {
		if rng.Bool(0.3) {
			vps = append(vps, VantagePoint{AS: asn, Name: top.ASes[asn].Name})
		}
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i].AS < vps[j].AS })
	return vps
}

// Traceroute returns the AS-level forward path src→dst as a traceroute
// reveals it (the data-plane truth), or nil if unreachable.
func Traceroute(ap *bgp.AllPaths, src, dst topology.ASN) []topology.ASN {
	return ap.Path(src, dst)
}

// ReverseTraceroute returns the AS-level path dst→src, measurable from src
// with the Reverse Traceroute system [36] without controlling dst.
func ReverseTraceroute(ap *bgp.AllPaths, src, dst topology.ASN) []topology.ASN {
	return ap.Path(dst, src)
}

// LinksOnPath adds the path's adjacencies to the set. Pairs touching a
// Hole (a hop suppressed by ICMP rate limiting) are unobservable and
// skipped; fault-free paths never contain holes, so their harvest is
// unchanged.
func LinksOnPath(links map[topology.LinkKey]bool, path []topology.ASN) {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == Hole || path[i+1] == Hole {
			continue
		}
		links[topology.MakeLinkKey(path[i], path[i+1])] = true
	}
}

// Campaign runs forward traceroutes from every vantage point to every
// target and returns the union of observed links.
func Campaign(ap *bgp.AllPaths, vps []VantagePoint, targets []topology.ASN) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	for _, vp := range vps {
		for _, dst := range targets {
			LinksOnPath(links, Traceroute(ap, vp.AS, dst))
		}
	}
	return links
}

// CloudCampaign measures from VMs inside the given cloud/hypergiant ASes
// out to every target, in both directions (forward traceroute plus Reverse
// Traceroute) — the §3.3.2 observation that measuring out from cloud VMs
// uncovers most cloud–user peering links.
func CloudCampaign(ap *bgp.AllPaths, cloudASes, targets []topology.ASN) map[topology.LinkKey]bool {
	links := map[topology.LinkKey]bool{}
	for _, c := range cloudASes {
		for _, dst := range targets {
			LinksOnPath(links, Traceroute(ap, c, dst))
			LinksOnPath(links, ReverseTraceroute(ap, c, dst))
		}
	}
	return links
}

// Union merges link sets.
func Union(sets ...map[topology.LinkKey]bool) map[topology.LinkKey]bool {
	out := map[topology.LinkKey]bool{}
	for _, s := range sets {
		for k := range s {
			out[k] = true
		}
	}
	return out
}

// PredictPath predicts the AS path src→dst using Gao–Rexford routing over
// an observed (partial) topology — what §3.3.1 does with public topologies.
// Returns nil when the observed graph has no policy-compliant route.
func PredictPath(observed *topology.Topology, src, dst topology.ASN) []topology.ASN {
	rib := bgp.ComputeRIB(observed, dst)
	return rib.PathFrom(src)
}

// PathsEqual reports whether two AS paths are identical.
func PathsEqual(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
