package tracer

import (
	"testing"

	"itmap/internal/bgp"
	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func TestTracerouteMatchesBGP(t *testing.T) {
	w := world.Build(world.Tiny(1))
	asns := w.Top.ASNs()
	src, dst := asns[0], asns[len(asns)-1]
	fwd := Traceroute(w.Paths, src, dst)
	if fwd == nil || fwd[0] != src || fwd[len(fwd)-1] != dst {
		t.Fatalf("bad traceroute %v", fwd)
	}
	rev := ReverseTraceroute(w.Paths, src, dst)
	if rev == nil || rev[0] != dst || rev[len(rev)-1] != src {
		t.Fatalf("bad reverse traceroute %v", rev)
	}
}

func TestAtlasVPsDistribution(t *testing.T) {
	w := world.Build(world.Small(2))
	vps := AtlasVPs(w.Top, randx.New(1))
	if len(vps) < 5 {
		t.Fatalf("only %d vantage points", len(vps))
	}
	academic := 0
	for _, vp := range vps {
		ty := w.Top.ASes[vp.AS].Type
		if ty != topology.Academic && ty != topology.Eyeball {
			t.Errorf("VP in %v AS", ty)
		}
		if ty == topology.Academic {
			academic++
		}
	}
	if academic == 0 {
		t.Error("no academic vantage points")
	}
}

func TestCampaignLinksAreReal(t *testing.T) {
	w := world.Build(world.Tiny(3))
	vps := AtlasVPs(w.Top, randx.New(2))
	links := Campaign(w.Paths, vps, w.Top.ASesOfType(topology.Hypergiant))
	if len(links) == 0 {
		t.Fatal("campaign observed nothing")
	}
	for lk := range links {
		if !w.Top.HasLink(lk.Lo, lk.Hi) {
			t.Fatalf("observed nonexistent link %v", lk)
		}
	}
}

func TestCloudCampaignUncoversCloudPeerings(t *testing.T) {
	w := world.Build(world.Small(4))
	clouds := w.Top.ASesOfType(topology.Cloud)
	if len(clouds) == 0 {
		t.Skip("no clouds")
	}
	targets := w.Top.ASesOfType(topology.Eyeball)
	links := CloudCampaign(w.Paths, clouds[:1], targets)
	// Every direct cloud-eyeball peering of this cloud should appear:
	// the first hop of the traceroute to that eyeball.
	cloud := clouds[0]
	for _, nb := range w.Top.ASes[cloud].Neighbors {
		if w.Top.ASes[nb.ASN].Type != topology.Eyeball {
			continue
		}
		if !links[topology.MakeLinkKey(cloud, nb.ASN)] {
			t.Errorf("cloud campaign missed direct peering %d-%d", cloud, nb.ASN)
		}
	}
}

func TestPredictPathFailsWithoutLinks(t *testing.T) {
	w := world.Build(world.Tiny(5))
	// Observed topology: transit links only.
	obs := w.Top.Subgraph(func(l topology.LinkInfo) bool {
		return l.Kind == topology.TransitLink
	})
	hg := w.Top.ASesOfType(topology.Hypergiant)[0]
	eyeball := w.Top.ASesOfType(topology.Eyeball)[0]
	if got := PredictPath(obs, eyeball, hg); got != nil {
		t.Errorf("predicted %v with all peering hidden", got)
	}
	// On the full graph prediction matches the truth.
	truth := w.Paths.Path(eyeball, hg)
	if got := PredictPath(w.Top, eyeball, hg); !PathsEqual(got, truth) {
		t.Errorf("full-graph prediction %v != truth %v", got, truth)
	}
}

func TestUnionAndPathsEqual(t *testing.T) {
	a := map[topology.LinkKey]bool{topology.MakeLinkKey(1, 2): true}
	b := map[topology.LinkKey]bool{topology.MakeLinkKey(2, 3): true}
	u := Union(a, b)
	if len(u) != 2 {
		t.Fatalf("union size %d", len(u))
	}
	if PathsEqual([]topology.ASN{1, 2}, []topology.ASN{1, 3}) {
		t.Error("different paths compared equal")
	}
	if !PathsEqual(nil, nil) {
		t.Error("nil paths should be equal")
	}
}

// TestCollectorPlusCloudCoverage reproduces the §3.3.2 claim shape:
// cloud campaigns recover most of the giant peerings collectors miss.
func TestCollectorPlusCloudCoverage(t *testing.T) {
	w := world.Build(world.Small(6))
	col := &bgp.Collector{Peers: bgp.DefaultCollectorPeers(w.Top, randx.New(3))}
	obs := col.ObservedLinks(w.Paths)
	before := bgp.MeasureVisibility(w.Top, obs)

	giants := append(w.Top.ASesOfType(topology.Cloud), w.Top.ASesOfType(topology.Hypergiant)...)
	targets := w.Top.ASNs()
	cloudLinks := CloudCampaign(w.Paths, giants, targets)
	after := bgp.MeasureVisibility(w.Top, Union(obs, cloudLinks))

	if after.FracGiantPeeringsVisible() < 0.9 {
		t.Errorf("cloud campaign leaves giant-peering visibility at %.0f%%",
			after.FracGiantPeeringsVisible()*100)
	}
	if after.FracGiantPeeringsVisible() <= before.FracGiantPeeringsVisible() {
		t.Error("cloud campaign did not improve visibility")
	}
}
