// Package catchment implements Verfploeter-style anycast catchment mapping
// (§3.2.3): from an anycast deployment, probe out to every client network
// and record which site the replies arrive at. The analysis reproduces the
// paper's "anycast in context" observation: route-weighted optimality looks
// mediocre while user-weighted optimality looks much better, because large
// eyeballs peer directly with the anycast operator near their users.
package catchment

import (
	"math"
	"sort"

	"itmap/internal/bgp"
	"itmap/internal/geo"
	"itmap/internal/services"
	"itmap/internal/topology"
	"itmap/internal/users"
)

// Map is a measured catchment map for one anycast owner.
type Map struct {
	Owner topology.ASN
	// Landing is the site receiving each client AS's traffic.
	Landing map[topology.ASN]*services.Site
}

// Measure builds the catchment map by probing every client AS from the
// anycast prefix and observing the receiving site.
func Measure(cat *services.Catalog, ap *bgp.AllPaths, owner topology.ASN, clients []topology.ASN) *Map {
	m := &Map{Owner: owner, Landing: map[topology.ASN]*services.Site{}}
	for _, c := range clients {
		if site := cat.AnycastCatchment(ap, owner, c); site != nil {
			m.Landing[c] = site
		}
	}
	return m
}

// ClientResult is the per-client-AS optimality record.
type ClientResult struct {
	ClientAS topology.ASN
	Users    float64
	// LandingKm is the client-to-landing-site distance.
	LandingKm float64
	// ClosestKm is the client-to-closest-site distance.
	ClosestKm float64
	// ProximityKm is the distance from the landing site to the client's
	// closest site (the paper's "directed within 500 km of their
	// closest serving site").
	ProximityKm float64
	Optimal     bool
}

// Analysis aggregates a catchment map against ground truth geography.
type Analysis struct {
	Results []ClientResult
	// RouteOptimalFrac weights each client AS equally ("31% of routes
	// go to the closest site").
	RouteOptimalFrac float64
	// UserOptimalFrac weights by users ("60% of users are mapped to the
	// optimal site").
	UserOptimalFrac float64
}

// Analyze computes optimality under both weightings.
func Analyze(m *Map, cat *services.Catalog, top *topology.Topology, um *users.Model) *Analysis {
	an := &Analysis{}
	var clients []topology.ASN
	for c := range m.Landing {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	var optRoutes, totRoutes, optUsers, totUsers float64
	for _, c := range clients {
		landing := m.Landing[c]
		at := top.PrimaryCity(c).Coord
		closest := cat.NearestAnycastSiteTo(m.Owner, at)
		if closest == nil {
			continue
		}
		r := ClientResult{
			ClientAS:    c,
			Users:       um.ASUsers(c),
			LandingKm:   geo.DistanceKm(at, landing.City.Coord),
			ClosestKm:   geo.DistanceKm(at, closest.City.Coord),
			ProximityKm: geo.DistanceKm(landing.City.Coord, closest.City.Coord),
		}
		r.Optimal = r.LandingKm <= r.ClosestKm+1
		an.Results = append(an.Results, r)
		totRoutes++
		totUsers += r.Users
		if r.Optimal {
			optRoutes++
			optUsers += r.Users
		}
	}
	if totRoutes > 0 {
		an.RouteOptimalFrac = optRoutes / totRoutes
	}
	if totUsers > 0 {
		an.UserOptimalFrac = optUsers / totUsers
	}
	return an
}

// UserFracWithinKm returns the user-weighted fraction of clients whose
// landing site is within km of their closest site.
func (an *Analysis) UserFracWithinKm(km float64) float64 {
	var within, total float64
	for _, r := range an.Results {
		total += r.Users
		if r.ProximityKm <= km {
			within += r.Users
		}
	}
	if total == 0 {
		return 0
	}
	return within / total
}

// RouteFracWithinKm is UserFracWithinKm with every client AS weighted
// equally.
func (an *Analysis) RouteFracWithinKm(km float64) float64 {
	var within, total float64
	for _, r := range an.Results {
		total++
		if r.ProximityKm <= km {
			within++
		}
	}
	if total == 0 {
		return 0
	}
	return within / total
}

// MedianInflationKm returns the user-weighted median of (landing − closest)
// distance inflation.
func (an *Analysis) MedianInflationKm() float64 {
	type wv struct{ v, w float64 }
	var vals []wv
	var total float64
	for _, r := range an.Results {
		vals = append(vals, wv{math.Max(0, r.LandingKm-r.ClosestKm), r.Users})
		total += r.Users
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
	cum := 0.0
	for _, x := range vals {
		cum += x.w
		if cum >= total/2 {
			return x.v
		}
	}
	return 0
}
