package catchment

import (
	"testing"

	"itmap/internal/services"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func anycastOwner(t testing.TB, w *world.World) topology.ASN {
	t.Helper()
	for _, s := range w.Cat.Services {
		if s.Kind == services.Anycast {
			return s.Owner
		}
	}
	t.Skip("no anycast service in this seed")
	return 0
}

func clientASes(w *world.World) []topology.ASN {
	var out []topology.ASN
	out = append(out, w.Top.ASesOfType(topology.Eyeball)...)
	out = append(out, w.Top.ASesOfType(topology.Enterprise)...)
	return out
}

func TestMeasureCoversClients(t *testing.T) {
	w := world.Build(world.Small(1))
	owner := anycastOwner(t, w)
	clients := clientASes(w)
	m := Measure(w.Cat, w.Paths, owner, clients)
	if len(m.Landing) != len(clients) {
		t.Errorf("catchment covers %d of %d clients", len(m.Landing), len(clients))
	}
	for c, site := range m.Landing {
		if site.OffNet() {
			t.Fatalf("client %d lands at an off-net", c)
		}
		if site.Owner != owner {
			t.Fatalf("client %d lands at foreign site", c)
		}
	}
}

func TestAnalyzeWeightings(t *testing.T) {
	w := world.Build(world.Small(2))
	owner := anycastOwner(t, w)
	m := Measure(w.Cat, w.Paths, owner, clientASes(w))
	an := Analyze(m, w.Cat, w.Top, w.Users)
	if len(an.Results) == 0 {
		t.Fatal("no results")
	}
	if an.RouteOptimalFrac <= 0 || an.RouteOptimalFrac > 1 {
		t.Fatalf("route-optimal frac %f", an.RouteOptimalFrac)
	}
	// The paper's core observation: users do better than routes, because
	// large eyeballs peer directly near their users.
	if an.UserOptimalFrac <= an.RouteOptimalFrac {
		t.Errorf("user-weighted optimality %.2f <= route-weighted %.2f; flattening signal missing",
			an.UserOptimalFrac, an.RouteOptimalFrac)
	}
	// Most users land within 500 km of their closest site.
	if f := an.UserFracWithinKm(500); f < 0.6 {
		t.Errorf("only %.0f%% of users within 500 km (paper: ~80%%)", f*100)
	}
	// Monotonicity of the distance CDF.
	if an.UserFracWithinKm(100) > an.UserFracWithinKm(1000) {
		t.Error("distance CDF not monotone")
	}
	if an.RouteFracWithinKm(1e9) < 0.999 {
		t.Error("route CDF does not reach 1")
	}
	if an.MedianInflationKm() < 0 {
		t.Error("negative median inflation")
	}
}

func TestDirectPeersLandOptimally(t *testing.T) {
	w := world.Build(world.Small(3))
	owner := anycastOwner(t, w)
	m := Measure(w.Cat, w.Paths, owner, clientASes(w))
	an := Analyze(m, w.Cat, w.Top, w.Users)
	byAS := map[topology.ASN]ClientResult{}
	for _, r := range an.Results {
		byAS[r.ClientAS] = r
	}
	// Clients peering directly with the owner at their home facility
	// should mostly be optimal (ingress near the client).
	direct, directOpt := 0, 0
	for _, nb := range w.Top.ASes[owner].Neighbors {
		if w.Top.ASes[nb.ASN].Type != topology.Eyeball {
			continue
		}
		r, ok := byAS[nb.ASN]
		if !ok {
			continue
		}
		direct++
		if r.Optimal {
			directOpt++
		}
	}
	if direct == 0 {
		t.Skip("no direct eyeball peers")
	}
	if frac := float64(directOpt) / float64(direct); frac < 0.5 {
		t.Errorf("only %.0f%% of direct peers land optimally", frac*100)
	}
}
