// Package tlsscan implements the paper's §3.2 approaches 1 and 2:
// Internet-wide TLS scans identify serving infrastructure by certificate
// ownership (including off-net caches living inside other networks — the
// Gigis et al. technique behind Figure 1b's server dots), and SNI scans
// identify which of that infrastructure serves a particular hostname.
package tlsscan

import (
	"sort"

	"itmap/internal/geo"
	"itmap/internal/services"
	"itmap/internal/topology"
)

// Server is one discovered serving prefix.
type Server struct {
	Prefix topology.PrefixID
	// HostAS is the network announcing the prefix.
	HostAS topology.ASN
	// CertOrg is the certificate subject organization (the owner name).
	CertOrg string
	// OwnerASN is the owner resolved from the certificate org.
	OwnerASN topology.ASN
	// City is the server's location (from the prefix geolocation the
	// scanner would use).
	City geo.City
}

// OffNet reports whether the server lives outside its owner's network.
func (s Server) OffNet() bool { return s.HostAS != s.OwnerASN }

// Scan is a completed Internet-wide TLS scan.
type Scan struct {
	Servers []Server
	// ByOwner groups discovered servers by certificate owner.
	ByOwner map[topology.ASN][]Server
}

// ScanAll performs a TLS handshake against every routable prefix and
// records certificate owners where servers answer.
func ScanAll(top *topology.Topology, cat *services.Catalog, prefixes []topology.PrefixID) *Scan {
	return ScanAtYear(top, cat, prefixes, services.LastOffNetYear)
}

// ScanAtYear scans the address space as it existed in a given year: sites
// deployed later do not answer. Re-running the scan per year reconstructs
// the off-net rollout longitudinally, as [25] did over seven years of scans.
func ScanAtYear(top *topology.Topology, cat *services.Catalog, prefixes []topology.PrefixID, year int) *Scan {
	sc := &Scan{ByOwner: map[topology.ASN][]Server{}}
	for _, p := range prefixes {
		if site, ok := cat.SiteAt(p); ok && site.DeployedYear > year {
			continue
		}
		ci, ok := cat.CertAt(p)
		if !ok {
			continue
		}
		host, _ := top.OwnerOf(p)
		srv := Server{
			Prefix:   p,
			HostAS:   host,
			CertOrg:  ci.Org,
			OwnerASN: ci.OwnerASN,
			City:     top.PrefixCity[p],
		}
		sc.Servers = append(sc.Servers, srv)
		sc.ByOwner[ci.OwnerASN] = append(sc.ByOwner[ci.OwnerASN], srv)
	}
	return sc
}

// OffNetHosts returns the host ASes where the owner has off-net servers,
// ascending — the "seven years in the life of hypergiants' off-nets" view.
func (sc *Scan) OffNetHosts(owner topology.ASN) []topology.ASN {
	seen := map[topology.ASN]bool{}
	for _, s := range sc.ByOwner[owner] {
		if s.OffNet() {
			seen[s.HostAS] = true
		}
	}
	out := make([]topology.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Locations returns the distinct cities hosting an owner's servers
// (Figure 1b's dots), sorted by name.
func (sc *Scan) Locations(owner topology.ASN) []geo.City {
	seen := map[string]geo.City{}
	for _, s := range sc.ByOwner[owner] {
		seen[s.City.Name] = s.City
	}
	var names []string
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]geo.City, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out
}

// SNIFootprint probes every discovered server with the given hostname and
// returns the prefixes that serve it — the per-service footprint of §3.2
// approach 2.
func (sc *Scan) SNIFootprint(cat *services.Catalog, domain string) []topology.PrefixID {
	var out []topology.PrefixID
	for _, s := range sc.Servers {
		if cat.ServesSNI(s.Prefix, domain) {
			out = append(out, s.Prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
