package tlsscan

import (
	"testing"

	"itmap/internal/topology"
	"itmap/internal/world"
)

func scan(t testing.TB, w *world.World) *Scan {
	t.Helper()
	return ScanAll(w.Top, w.Cat, w.Top.AllPrefixes())
}

func TestScanFindsEverySite(t *testing.T) {
	w := world.Build(world.Tiny(1))
	sc := scan(t, w)
	found := map[topology.PrefixID]bool{}
	for _, s := range sc.Servers {
		found[s.Prefix] = true
	}
	for owner, d := range w.Cat.Deployments {
		for _, site := range d.Sites {
			if !found[site.Prefix] {
				t.Errorf("site %v of owner %d missed by scan", site.Prefix, owner)
			}
		}
		if len(sc.ByOwner[owner]) < len(d.Sites) {
			t.Errorf("owner %d: scan found %d servers, deployment has %d",
				owner, len(sc.ByOwner[owner]), len(d.Sites))
		}
	}
}

func TestScanCertOrgMatchesOwner(t *testing.T) {
	w := world.Build(world.Tiny(2))
	sc := scan(t, w)
	for _, s := range sc.Servers {
		if s.CertOrg != w.Top.ASes[s.OwnerASN].Name {
			t.Fatalf("cert org %q != owner name %q", s.CertOrg, w.Top.ASes[s.OwnerASN].Name)
		}
		if host, _ := w.Top.OwnerOf(s.Prefix); host != s.HostAS {
			t.Fatalf("host AS mismatch for %v", s.Prefix)
		}
	}
}

func TestOffNetDiscovery(t *testing.T) {
	w := world.Build(world.Tiny(3))
	sc := scan(t, w)
	ref := w.Cat.ReferenceCDN
	hosts := sc.OffNetHosts(ref)
	want := w.Cat.Deployments[ref].OffNetByHost
	if len(hosts) != len(want) {
		t.Fatalf("scan found %d off-net hosts, truth %d", len(hosts), len(want))
	}
	for _, h := range hosts {
		if _, ok := want[h]; !ok {
			t.Errorf("false off-net host %d", h)
		}
		if w.Top.ASes[h].Type != topology.Eyeball {
			t.Errorf("off-net host %d is %v", h, w.Top.ASes[h].Type)
		}
	}
}

func TestLocations(t *testing.T) {
	w := world.Build(world.Tiny(4))
	sc := scan(t, w)
	ref := w.Cat.ReferenceCDN
	locs := sc.Locations(ref)
	if len(locs) < 3 {
		t.Errorf("reference CDN spans %d cities, expected global footprint", len(locs))
	}
	for i := 1; i < len(locs); i++ {
		if locs[i].Name < locs[i-1].Name {
			t.Fatal("locations not sorted")
		}
	}
}

func TestSNIFootprint(t *testing.T) {
	w := world.Build(world.Tiny(5))
	sc := scan(t, w)
	svc := w.Cat.Top(0)
	fp := sc.SNIFootprint(w.Cat, svc.Domain)
	if len(fp) == 0 {
		t.Fatal("empty SNI footprint for the top service")
	}
	for _, p := range fp {
		site, siteOK := w.Cat.SiteAt(p)
		if siteOK {
			if site.Owner != svc.Owner {
				t.Errorf("footprint includes foreign site %v", p)
			}
			continue
		}
		if owner, anyOK := w.Cat.AnycastOwnerOf(p); !anyOK || owner != svc.Owner {
			t.Errorf("footprint prefix %v is neither site nor anycast of owner", p)
		}
	}
	if got := sc.SNIFootprint(w.Cat, "missing.example"); len(got) != 0 {
		t.Error("unknown domain has a footprint")
	}
}

func TestUserSpaceSilent(t *testing.T) {
	w := world.Build(world.Tiny(6))
	sc := scan(t, w)
	serving := map[topology.PrefixID]bool{}
	for _, s := range sc.Servers {
		serving[s.Prefix] = true
	}
	// No prefix with users answers TLS (users aren't servers).
	for _, p := range w.Users.UserPrefixes() {
		if serving[p] {
			t.Errorf("user prefix %v answered the TLS scan", p)
		}
	}
}
