package cacheprobe

import (
	"math"
	"testing"

	"itmap/internal/geo"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func TestHourlyProfileRecoverssTimezone(t *testing.T) {
	w := world.Build(world.Tiny(1))
	domain := w.Cat.ECSDomains()[0]
	pb := &Prober{PR: w.PR}
	// Gather a country's small prefixes (mid-range hit probability).
	byCountry := map[string][]topology.PrefixID{}
	for _, ty := range []topology.ASType{topology.Enterprise, topology.Academic} {
		for _, asn := range w.Top.ASesOfType(ty) {
			a := w.Top.ASes[asn]
			byCountry[a.Country] = append(byCountry[a.Country], a.Prefixes...)
		}
	}
	matched, checked := 0, 0
	for code, prefixes := range byCountry {
		if len(prefixes) < 8 {
			continue
		}
		hp, err := pb.MeasureHourlyProfile(w.Top, prefixes, domain, 0, 5*simtime.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if hp.Swing() < 0.2 {
			continue
		}
		c, err := geo.CountryByCode(code)
		if err != nil {
			continue
		}
		truePeak := int(math.Round(20-c.UTCOffsetHours+24)) % 24
		checked++
		if HourDistance(hp.PeakUTCHour(), truePeak) <= 3 {
			matched++
		}
	}
	if checked == 0 {
		t.Skip("no diurnal country signal at tiny scale")
	}
	if matched == 0 {
		t.Errorf("no country's recovered peak matched its timezone (%d checked)", checked)
	}
}

func TestHourlyProfileRateWraps(t *testing.T) {
	hp := &HourlyProfile{}
	hp.Probes[23] = 10
	hp.Hits[23] = 5
	if hp.Rate(-1) != 0.5 {
		t.Errorf("Rate(-1) = %f, want 0.5 (wraps to 23)", hp.Rate(-1))
	}
	if hp.Rate(47) != 0.5 {
		t.Errorf("Rate(47) = %f, want 0.5", hp.Rate(47))
	}
}

func TestHourlyProfileEmptySafe(t *testing.T) {
	hp := &HourlyProfile{}
	if hp.Swing() != 0 {
		t.Error("empty profile swing should be 0")
	}
	_ = hp.PeakUTCHour() // must not panic
}

func TestHourDistance(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {23, 0, 1}, {0, 23, 1}, {6, 18, 12}, {20, 3, 7},
	}
	for _, c := range cases {
		if got := HourDistance(c.a, c.b); got != c.want {
			t.Errorf("HourDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
