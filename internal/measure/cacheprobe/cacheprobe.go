// Package cacheprobe implements the paper's §3.1.2 approach 1: discovering
// which prefixes host active clients by issuing non-recursive, ECS-tagged
// queries for popular domains against the public resolver's PoP caches.
// A cache hit for ⟨domain, prefix⟩ means a client in that prefix queried the
// domain within the record's TTL — a binary activity signal that, sampled
// over a day, becomes a relative-activity estimate (§3.1.3, Figure 2).
package cacheprobe

import (
	"math"
	"sort"

	"itmap/internal/dnssim"
	"itmap/internal/faults"
	"itmap/internal/obs"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

func mathLog(x float64) float64 { return math.Log(x) }

// Prober drives cache-probing campaigns. This is the naive client: with a
// fault plan active on the resolver, a probe that times out, is throttled,
// or draws a SERVFAIL is simply wasted — the prober neither retries nor
// reschedules, so its coverage degrades with the substrate. ResilientProber
// is the hardened variant.
type Prober struct {
	PR *dnssim.PublicResolver
	// Domains are the popular ECS-supporting domains to probe
	// (catalog.ECSDomains()); non-ECS domains cannot be localized.
	Domains []string
	// Source identifies the probing host to the fault layer. The naive
	// prober hammers from one source, so per-source bans hit everything.
	Source uint64
}

// Discovery is the result of a prefix-discovery sweep (Figure 1a/1b input).
type Discovery struct {
	// Found marks prefixes with at least one cache hit.
	Found map[topology.PrefixID]bool
	// FoundASes marks ASes owning at least one found prefix.
	FoundASes map[topology.ASN]bool
	// ByPoP counts discovered prefixes per probed PoP (Figure 1a).
	ByPoP map[int]int
	// Probes is the total probe count issued.
	Probes int
	// Failed counts probes lost to transient faults (always 0 without a
	// fault plan).
	Failed int
}

// DiscoverPrefixes sweeps all given prefixes: for each prefix it probes the
// prefix's home PoP for every domain at `rounds` times spread across one
// simulated day starting at start. More rounds catch lower-activity
// prefixes (more TTL windows sampled).
func (pb *Prober) DiscoverPrefixes(top *topology.Topology, prefixes []topology.PrefixID, start simtime.Time, rounds int) (*Discovery, error) {
	if rounds < 1 {
		rounds = 1
	}
	d := &Discovery{
		Found:     map[topology.PrefixID]bool{},
		FoundASes: map[topology.ASN]bool{},
		ByPoP:     map[int]int{},
	}
	for _, p := range prefixes {
		pop := pb.PR.HomePoP(p)
		if pop == nil {
			continue
		}
	domains:
		for _, dom := range pb.Domains {
			for r := 0; r < rounds; r++ {
				at := start + simtime.Time(24*float64(r)/float64(rounds))
				hit, err := pb.PR.ProbeCacheOpts(pop.ID, dom, p, at, dnssim.ProbeOpts{Source: pb.Source})
				if err != nil {
					if faults.IsTransient(err) {
						d.Probes++
						d.Failed++
						continue
					}
					return nil, err
				}
				d.Probes++
				if hit {
					d.Found[p] = true
					if asn, ok := top.OwnerOf(p); ok {
						d.FoundASes[asn] = true
					}
					break domains
				}
			}
		}
		if d.Found[p] {
			d.ByPoP[pop.ID]++
		}
	}
	mode := obs.L("mode", "naive")
	obs.C("itm_probe_datagrams_total", "Probe datagrams sent, by client mode.", mode).Add(uint64(d.Probes))
	obs.C("itm_probe_failed_total", "Probe datagrams lost to transient faults, by client mode.", mode).Add(uint64(d.Failed))
	obs.C("itm_probe_prefixes_found_total", "Prefixes discovered active (at least one cache hit).").Add(uint64(len(d.Found)))
	return d, nil
}

// PoPCount is one bar of Figure 1a.
type PoPCount struct {
	PoP      *dnssim.PoP
	Prefixes int
}

// PoPCounts returns Figure 1a's series: prefixes discovered per PoP,
// descending.
func (d *Discovery) PoPCounts(pr *dnssim.PublicResolver) []PoPCount {
	var out []PoPCount
	for _, pop := range pr.PoPs {
		out = append(out, PoPCount{PoP: pop, Prefixes: d.ByPoP[pop.ID]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefixes != out[j].Prefixes {
			return out[i].Prefixes > out[j].Prefixes
		}
		return out[i].PoP.ID < out[j].PoP.ID
	})
	return out
}

// HitRates is the result of a hit-rate campaign (Figure 2 input).
type HitRates struct {
	// ByPrefix is hits/probes per prefix.
	ByPrefix map[topology.PrefixID]float64
	// Failed counts probes lost to transient faults; the naive campaign
	// keeps the full probe count in each denominator, so faults bias its
	// hit rates downward.
	Failed int
	// ByAS is the total cache-hit count per AS over the campaign (the
	// paper "recorded cache hit counts by AS"): it grows both with how
	// often each prefix's entry is cached and with how much address
	// space the AS's users occupy, which is what makes it track
	// subscriber counts.
	ByAS map[topology.ASN]float64
	// Probes per prefix issued.
	ProbesPerPrefix int
}

// RateFromHitRate inverts the TTL-cache occupancy law to recover the
// underlying client query rate from an observed hit rate: occupancy under
// Poisson arrivals is p = 1 − e^(−rate·TTL), so rate = −ln(1−p)/TTL
// (queries per hour, with TTL in seconds). Fully saturated observations are
// clamped to the largest rate the probe count can resolve — with n probes,
// a hit rate of 1 only bounds the rate from below.
func RateFromHitRate(hitRate float64, probes int, ttlSeconds int) float64 {
	if hitRate <= 0 || ttlSeconds <= 0 {
		return 0
	}
	maxResolvable := 1 - 1/(2*float64(max(probes, 1)))
	if hitRate > maxResolvable {
		hitRate = maxResolvable
	}
	ttlHours := float64(ttlSeconds) / 3600
	return -mathLog(1-hitRate) / ttlHours
}

// MeasureHitRates probes one domain for every prefix every interval across
// one simulated day and reports hit rates. The intuition under test
// (§3.1.3): prefixes with more active users populate caches more often, so
// hit rate tracks relative activity.
func (pb *Prober) MeasureHitRates(top *topology.Topology, prefixes []topology.PrefixID, domain string, start simtime.Time, interval simtime.Time) (*HitRates, error) {
	if interval <= 0 {
		interval = 5 * simtime.Minute
	}
	hr := &HitRates{
		ByPrefix: map[topology.PrefixID]float64{},
		ByAS:     map[topology.ASN]float64{},
	}
	probesPer := int(24 / float64(interval))
	hr.ProbesPerPrefix = probesPer
	probes := 0
	for _, p := range prefixes {
		pop := pb.PR.HomePoP(p)
		if pop == nil {
			continue
		}
		hits := 0
		for r := 0; r < probesPer; r++ {
			at := start + simtime.Time(float64(r))*interval
			probes++
			hit, err := pb.PR.ProbeCacheOpts(pop.ID, domain, p, at, dnssim.ProbeOpts{Source: pb.Source})
			if err != nil {
				if faults.IsTransient(err) {
					hr.Failed++
					continue
				}
				return nil, err
			}
			if hit {
				hits++
			}
		}
		hr.ByPrefix[p] = float64(hits) / float64(probesPer)
		if asn, ok := top.OwnerOf(p); ok {
			hr.ByAS[asn] += float64(hits)
		}
	}
	mode := obs.L("mode", "naive")
	obs.C("itm_probe_datagrams_total", "Probe datagrams sent, by client mode.", mode).Add(uint64(probes))
	obs.C("itm_probe_failed_total", "Probe datagrams lost to transient faults, by client mode.", mode).Add(uint64(hr.Failed))
	return hr, nil
}
