package cacheprobe

import (
	"bytes"
	"reflect"
	"testing"

	"itmap/internal/dnswire"
	"itmap/internal/faults"
	"itmap/internal/measure/tracer"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/world"

	"net/netip"

	"itmap/internal/dnssim"
)

// TestZeroFaultPlanIsByteIdentical pins the tentpole's core contract: a nil
// plan and a zero (inert) plan produce exactly the same measurement outputs
// everywhere the fault layer was threaded through.
func TestZeroFaultPlanIsByteIdentical(t *testing.T) {
	w := world.Build(world.Tiny(5))
	domains := w.Cat.ECSDomains()[:4]
	prefixes := w.Top.AllPrefixes()
	pb := &Prober{PR: w.PR, Domains: domains, Source: 0xabc}

	run := func() (*Discovery, *HitRates, *HourlyProfile) {
		d, err := pb.DiscoverPrefixes(w.Top, prefixes, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := pb.MeasureHitRates(w.Top, prefixes[:40], domains[0], 0, 30*simtime.Minute)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := pb.MeasureHourlyProfile(w.Top, prefixes[:20], domains[0], 0, simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return d, hr, hp
	}

	w.PR.SetFaultPlan(nil)
	d1, hr1, hp1 := run()
	w.PR.SetFaultPlan(faults.NewPlan(faults.None(), 99))
	d2, hr2, hp2 := run()
	w.PR.SetFaultPlan(nil)

	if !reflect.DeepEqual(d1, d2) {
		t.Error("zero-fault plan changed DiscoverPrefixes output")
	}
	if !reflect.DeepEqual(hr1, hr2) {
		t.Error("zero-fault plan changed MeasureHitRates output")
	}
	if !reflect.DeepEqual(hp1, hp2) {
		t.Error("zero-fault plan changed MeasureHourlyProfile output")
	}
	if d1.Failed != 0 || hr1.Failed != 0 || hp1.Failed != 0 {
		t.Error("fault-free sweep recorded failures")
	}
}

// TestZeroFaultTracerIdentical: with an inert plan the fault-aware
// traceroute is the plain traceroute, hole-free.
func TestZeroFaultTracerIdentical(t *testing.T) {
	w := world.Build(world.Tiny(5))
	asns := w.Top.ASNs()
	src, dst := asns[0], asns[len(asns)-1]
	clean := tracer.Traceroute(w.Paths, src, dst)
	for _, pl := range []*faults.Plan{nil, faults.NewPlan(faults.None(), 1)} {
		got := tracer.TracerouteFaulty(w.Paths, src, dst, pl, 0, 3)
		if !tracer.PathsEqual(clean, got) {
			t.Fatalf("inert plan changed traceroute: %v vs %v", clean, got)
		}
	}
}

// TestZeroFaultWireBytesIdentical: the UDP front end answers identical
// bytes with and without an inert plan.
func TestZeroFaultWireBytesIdentical(t *testing.T) {
	w := world.Build(world.Tiny(5))
	fe := &dnssim.WireFrontend{PR: w.PR, Auth: w.Auth, PoP: 0}
	dom := w.Cat.ECSDomains()[0]
	var p netip.Prefix
	for _, pr := range w.Top.AllPrefixes() {
		if w.PR.HomePoP(pr) != nil && w.PR.HomePoP(pr).ID == 0 {
			p = netip.PrefixFrom(pr.Addr(0), 24)
			break
		}
	}
	q := dnswire.NewQuery(5, dom, false).WithECS(p)
	raw, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w.PR.SetFaultPlan(nil)
	a := fe.Handle(raw, 2)
	w.PR.SetFaultPlan(faults.NewPlan(faults.None(), 1))
	b := fe.Handle(raw, 2)
	w.PR.SetFaultPlan(nil)
	if !bytes.Equal(a, b) {
		t.Error("zero-fault plan changed wire response bytes")
	}
}

func hostileProber(w *world.World, workers int) *ResilientProber {
	return &ResilientProber{
		PR:      w.PR,
		Domains: w.Cat.ECSDomains()[:4],
		Retry: resilience.Retryer{
			Budget: 5,
			Backoff: resilience.Backoff{
				Base: 5 * simtime.Minute, Factor: 3, Cap: 2 * simtime.Hour,
				Jitter: 0.5, Seed: 21,
			},
		},
		QPS:        25,
		BaseSource: 0x900d,
		Workers:    workers,
	}
}

// TestResilientSweepDeterministic: identical fault outcomes and sweep
// ledgers across repeated runs and across worker counts.
func TestResilientSweepDeterministic(t *testing.T) {
	w := world.Build(world.Tiny(6))
	w.PR.SetFaultPlan(faults.NewPlan(faults.Hostile(), 77))
	defer w.PR.SetFaultPlan(nil)
	prefixes := w.Top.AllPrefixes()

	type outcome struct {
		d  *Discovery
		st *SweepStats
	}
	run := func(workers int) outcome {
		d, st, err := hostileProber(w, workers).DiscoverPrefixes(w.Top, prefixes, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{d, st}
	}
	base := run(1)
	if base.st.Retries == 0 {
		t.Fatal("hostile sweep never retried — plan not biting")
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(base.d, got.d) {
			t.Fatalf("workers=%d changed discovery output", workers)
		}
		if !reflect.DeepEqual(base.st, got.st) {
			t.Fatalf("workers=%d changed sweep stats", workers)
		}
	}
}

// TestResilientZeroFaultMatchesNaiveSemantics: without faults, the
// resilient sweep finds exactly what the naive sweep finds (same targets,
// same break-on-hit semantics) and records a clean ledger.
func TestResilientZeroFaultMatchesNaive(t *testing.T) {
	w := world.Build(world.Tiny(7))
	prefixes := w.Top.AllPrefixes()
	domains := w.Cat.ECSDomains()[:4]
	naive := &Prober{PR: w.PR, Domains: domains}
	nd, err := naive.DiscoverPrefixes(w.Top, prefixes, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rp := hostileProber(w, 0)
	rp.QPS = 0 // pacing shifts probe times; disable for exact-time parity
	rd, st, err := rp.DiscoverPrefixes(w.Top, prefixes, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nd.Found, rd.Found) {
		t.Errorf("fault-free resilient Found differs: naive %d vs resilient %d",
			len(nd.Found), len(rd.Found))
	}
	if !reflect.DeepEqual(nd.ByPoP, rd.ByPoP) {
		t.Error("fault-free resilient ByPoP differs")
	}
	if st.Retries != 0 || st.GiveUps != 0 || st.Skips != 0 || st.BreakerOpens != 0 {
		t.Errorf("fault-free sweep ledger not clean: %+v", st)
	}
	for p, o := range st.Outcome {
		if o != TargetProbedOK {
			t.Fatalf("fault-free target %v classified %v", p, o)
		}
	}
}

// TestResilientHitRatesDeterministic covers the second sweep variant.
func TestResilientHitRatesDeterministic(t *testing.T) {
	w := world.Build(world.Tiny(8))
	w.PR.SetFaultPlan(faults.NewPlan(faults.Lossy(), 13))
	defer w.PR.SetFaultPlan(nil)
	prefixes := w.Top.AllPrefixes()
	dom := w.Cat.ECSDomains()[0]
	run := func(workers int) (*HitRates, *SweepStats) {
		hr, st, err := hostileProber(w, workers).MeasureHitRates(w.Top, prefixes[:60], dom, 0, simtime.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return hr, st
	}
	hr1, st1 := run(1)
	hr8, st8 := run(8)
	if !reflect.DeepEqual(hr1, hr8) || !reflect.DeepEqual(st1, st8) {
		t.Fatal("hit-rate sweep not deterministic across worker counts")
	}
}
