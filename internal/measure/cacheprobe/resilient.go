package cacheprobe

import (
	"errors"

	"itmap/internal/dnssim"
	"itmap/internal/faults"
	"itmap/internal/obs"
	"itmap/internal/obs/history"
	"itmap/internal/parallel"
	"itmap/internal/resilience"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// ResilientProber is the hardened cache-probing client: every probe is
// retried with capped exponential backoff (re-rolling per-packet faults and
// sliding out of ban windows and outages), each PoP sits behind a circuit
// breaker so a dead PoP stops burning probes, a token-bucket pacer keeps
// each source under its schedule.Campaign.QPSPerProber budget, and the
// target set is split across Shards independent sources so one ban never
// stalls the whole campaign.
//
// Determinism contract: sweep results are a pure function of (world, fault
// plan, prober config, Shards) — worker goroutines only change wall-clock
// time, never outcomes — because shard boundaries are fixed by Shards, all
// mutable state (pacer, breakers, clocks) is per-shard, and shard results
// merge in shard order.
type ResilientProber struct {
	PR *dnssim.PublicResolver
	// Domains to probe, as for Prober.
	Domains []string
	// Retry is the per-probe retry policy. Zero value: 1 attempt, no
	// retries — like the naive prober but with bookkeeping.
	Retry resilience.Retryer
	// Breaker configures the per-PoP circuit breakers.
	Breaker resilience.BreakerConfig
	// QPS is each source's token-bucket budget in queries per simulated
	// second (schedule.Campaign.QPSPerProber). 0 disables pacing.
	QPS float64
	// Burst is the pacer burst size (default 10).
	Burst int
	// Shards is the number of independent probing sources (default 16).
	// It is part of the campaign's identity: changing it changes probe
	// timing and therefore outcomes; worker counts never do.
	Shards int
	// BaseSource is the fault-layer identity of shard 0; shard s probes
	// as BaseSource+s.
	BaseSource uint64
	// Workers bounds the goroutines driving shards (0 = one per CPU).
	Workers int
}

// TargetOutcome classifies how a sweep left one target prefix.
type TargetOutcome uint8

const (
	// TargetProbedOK: at least one probe got a definitive answer (hit or
	// clean miss) — fresh data.
	TargetProbedOK TargetOutcome = iota
	// TargetGaveUp: every probe exhausted its retry budget; no
	// definitive answer this sweep.
	TargetGaveUp
	// TargetSkipped: the PoP's breaker was open at every opportunity;
	// the target was never probed and any prior knowledge is stale.
	TargetSkipped
)

// String names the outcome for reports.
func (o TargetOutcome) String() string {
	switch o {
	case TargetProbedOK:
		return "probed-ok"
	case TargetGaveUp:
		return "gave-up"
	case TargetSkipped:
		return "skipped"
	}
	return "unknown"
}

// SweepStats is the resilient sweep's bookkeeping: what the campaign spent
// and where it had to give up. The map keys are exactly the targets the
// sweep could attribute to a PoP.
type SweepStats struct {
	// Probes counts datagrams actually sent (first attempts + retries).
	Probes int
	// Retries counts second-and-later attempts.
	Retries int
	// GiveUps counts targets classified TargetGaveUp.
	GiveUps int
	// Skips counts probe opportunities dropped because a breaker was open.
	Skips int
	// BreakerOpens counts breaker open transitions across all shards.
	BreakerOpens int
	// PacerWaits counts first attempts the token-bucket pacer pushed past
	// their scheduled slot.
	PacerWaits int
	// BreakerTransitions counts breaker state transitions across all
	// shards, keyed "from>to" (e.g. "half-open>closed").
	BreakerTransitions map[string]int
	// Outcome classifies every target.
	Outcome map[topology.PrefixID]TargetOutcome
	// Attempts records datagrams spent per target.
	Attempts map[topology.PrefixID]int
}

func newSweepStats() *SweepStats {
	return &SweepStats{
		BreakerTransitions: map[string]int{},
		Outcome:            map[topology.PrefixID]TargetOutcome{},
		Attempts:           map[topology.PrefixID]int{},
	}
}

func (s *SweepStats) merge(o *SweepStats) {
	s.Probes += o.Probes
	s.Retries += o.Retries
	s.GiveUps += o.GiveUps
	s.Skips += o.Skips
	s.BreakerOpens += o.BreakerOpens
	s.PacerWaits += o.PacerWaits
	for k, v := range o.BreakerTransitions {
		s.BreakerTransitions[k] += v
	}
	for p, v := range o.Outcome {
		s.Outcome[p] = v
	}
	for p, v := range o.Attempts {
		s.Attempts[p] = v
	}
}

// breakerTransitions is every reachable "from>to" edge, in the order the
// state machine cycles through them; reportObs walks this fixed list so the
// exposition never depends on map order.
var breakerTransitions = []string{
	"closed>open", "open>half-open", "half-open>closed", "half-open>open",
}

// reportObs folds one merged sweep ledger into the process metrics
// registry. It runs on the serial path after the shard merge, so every
// total is a pure function of the sweep result.
func (s *SweepStats) reportObs(sweep string) {
	lab := obs.L("sweep", sweep)
	obs.C("itm_probe_datagrams_total", "Probe datagrams sent, by client mode.",
		obs.L("mode", "resilient")).Add(uint64(s.Probes))
	obs.C("itm_probe_retries_total", "Second-and-later probe attempts, by sweep kind.", lab).Add(uint64(s.Retries))
	obs.C("itm_probe_giveups_total", "Targets whose retry budget died without a definitive answer.", lab).Add(uint64(s.GiveUps))
	obs.C("itm_probe_breaker_skips_total", "Probe opportunities dropped because a PoP breaker was open.", lab).Add(uint64(s.Skips))
	obs.C("itm_probe_breaker_opens_total", "PoP circuit-breaker open transitions.", lab).Add(uint64(s.BreakerOpens))
	obs.C("itm_probe_pacer_waits_total", "First attempts delayed past their schedule by the token-bucket pacer.", lab).Add(uint64(s.PacerWaits))
	for _, tr := range breakerTransitions {
		obs.C("itm_probe_breaker_transitions_total", "PoP circuit-breaker state transitions, by edge.",
			obs.L("transition", tr)).Add(uint64(s.BreakerTransitions[tr]))
	}
	counts := map[TargetOutcome]int{}
	for _, o := range s.Outcome {
		counts[o]++
	}
	for _, o := range []TargetOutcome{TargetProbedOK, TargetGaveUp, TargetSkipped} {
		obs.C("itm_probe_targets_total", "Sweep targets by final outcome.",
			lab, obs.L("outcome", o.String())).Add(uint64(counts[o]))
	}
}

func (rp *ResilientProber) shards() int {
	if rp.Shards < 1 {
		return 16
	}
	return rp.Shards
}

// shardState is one probing source's mutable world.
type shardState struct {
	source   uint64
	pacer    *resilience.Pacer
	breakers map[int]*resilience.Breaker
}

func (rp *ResilientProber) newShard(i int) *shardState {
	burst := rp.Burst
	if burst < 1 {
		burst = 10
	}
	return &shardState{
		source:   rp.BaseSource + uint64(i),
		pacer:    resilience.NewPacer(rp.QPS, burst),
		breakers: map[int]*resilience.Breaker{},
	}
}

func (ss *shardState) breaker(pop int, cfg resilience.BreakerConfig, st *SweepStats) *resilience.Breaker {
	b := ss.breakers[pop]
	if b == nil {
		b = resilience.NewBreaker(cfg)
		// Breakers and ledgers are both shard-local, so the hook needs no
		// locking and the per-edge counts merge in shard order.
		b.OnStateChange = func(from, to resilience.State, _ simtime.Time) {
			st.BreakerTransitions[from.String()+">"+to.String()]++
		}
		ss.breakers[pop] = b
	}
	return b
}

// probe issues one logical probe with retries. Returns (hit, definitive,
// datagrams): definitive is false when the retry budget died without an
// answer; datagrams counts packets actually sent (breaker-skipped attempts
// send nothing). The first attempt fires when the pacer grants it (the
// pacer is monotone, so a backlogged source slips later and later);
// retries then advance through backoff, sliding out of ban windows and
// outages. One target's retries never delay another target — a real
// prober multiplexes its outstanding probes.
func (rp *ResilientProber) probe(ss *shardState, st *SweepStats, pop int, dom string, p topology.PrefixID, sched simtime.Time) (bool, bool, int) {
	br := ss.breaker(pop, rp.Breaker, st)
	var hit bool
	sent := 0
	key := uint64(p)
	grant := ss.pacer.Next(sched)
	if grant > sched {
		st.PacerWaits++
	}
	out := rp.Retry.Do(grant, key, func(attempt int, at simtime.Time) error {
		if !br.Allow(at) {
			st.Skips++
			return faults.ErrTimeout // counts as failure, but no datagram
		}
		st.Probes++
		sent++
		if sent > 1 {
			st.Retries++
		}
		h, err := rp.PR.ProbeCacheOpts(pop, dom, p, at, dnssim.ProbeOpts{Source: ss.source, Attempt: attempt})
		// Only timeouts feed the breaker: silence is the dead-PoP signal.
		// A throttle is the source's problem (backoff handles it) and a
		// SERVFAIL is a per-query flake; tripping the PoP breaker on
		// either turns one banned source into a shard-wide skip storm.
		br.Record(at, !errors.Is(err, faults.ErrTimeout))
		if err != nil {
			return err
		}
		hit = h
		return nil
	})
	if out.Err != nil {
		return false, false, sent
	}
	return hit, true, sent
}

// DiscoverPrefixes is the resilient DiscoverPrefixes: same discovery
// semantics (a prefix is found on its first cache hit), plus retry,
// breaker, and pacing behaviour, and a SweepStats ledger classifying every
// target as probed-ok, gave-up, or skipped.
func (rp *ResilientProber) DiscoverPrefixes(top *topology.Topology, prefixes []topology.PrefixID, start simtime.Time, rounds int) (*Discovery, *SweepStats, error) {
	if rounds < 1 {
		rounds = 1
	}
	retryable := rp.Retry.Retryable
	if retryable == nil {
		rp.Retry.Retryable = faults.IsTransient
	}
	n := rp.shards()
	root := obs.StartSpan("cacheprobe.discover", start).
		SetAttrInt("targets", int64(len(prefixes))).
		SetAttrInt("shards", int64(n)).
		SetAttrInt("rounds", int64(rounds))
	type shardResult struct {
		d  *Discovery
		st *SweepStats
	}
	results := make([]shardResult, n)
	chunk := (len(prefixes) + n - 1) / n
	parallel.ForEach(n, rp.Workers, func(i int) {
		lo := i * chunk
		hi := min(lo+chunk, len(prefixes))
		if lo >= hi {
			return
		}
		sp := root.Child("shard", start).SetOrder(i).SetAttrInt("shard", int64(i))
		ss := rp.newShard(i)
		d := &Discovery{
			Found:     map[topology.PrefixID]bool{},
			FoundASes: map[topology.ASN]bool{},
			ByPoP:     map[int]int{},
		}
		st := newSweepStats()
		for _, p := range prefixes[lo:hi] {
			pop := rp.PR.HomePoP(p)
			if pop == nil {
				continue
			}
			definitive := 0
			attempts := 0
		domains:
			for _, dom := range rp.Domains {
				for r := 0; r < rounds; r++ {
					sched := start + simtime.Time(24*float64(r)/float64(rounds))
					hit, ok, att := rp.probe(ss, st, pop.ID, dom, p, sched)
					attempts += att
					if !ok {
						continue
					}
					definitive++
					d.Probes++
					if hit {
						d.Found[p] = true
						if asn, ok := top.OwnerOf(p); ok {
							d.FoundASes[asn] = true
						}
						break domains
					}
				}
			}
			st.Attempts[p] = attempts
			switch {
			case definitive > 0:
				st.Outcome[p] = TargetProbedOK
			case attempts > 0:
				st.Outcome[p] = TargetGaveUp
				st.GiveUps++
			default:
				st.Outcome[p] = TargetSkipped
			}
			if d.Found[p] {
				d.ByPoP[pop.ID]++
			}
		}
		for _, b := range ss.breakers {
			st.BreakerOpens += b.Opens
		}
		sp.SetAttrInt("datagrams", int64(st.Probes)).End(start + 24)
		results[i] = shardResult{d, st}
	})
	rp.Retry.Retryable = retryable

	out := &Discovery{
		Found:     map[topology.PrefixID]bool{},
		FoundASes: map[topology.ASN]bool{},
		ByPoP:     map[int]int{},
	}
	stats := newSweepStats()
	for _, r := range results {
		if r.d == nil {
			continue
		}
		for p := range r.d.Found {
			out.Found[p] = true
		}
		for asn := range r.d.FoundASes {
			out.FoundASes[asn] = true
		}
		for pop, c := range r.d.ByPoP {
			out.ByPoP[pop] += c
		}
		out.Probes += r.d.Probes
		stats.merge(r.st)
	}
	// Keep naive-Discovery units: Probes counts datagrams issued, Failed
	// the ones faults ate. Shards accumulated definitive answers in
	// d.Probes; the ledger has the datagram truth.
	answered := out.Probes
	out.Probes = stats.Probes
	out.Failed = stats.Probes - answered
	stats.reportObs("discover")
	obs.C("itm_probe_prefixes_found_total", "Prefixes discovered active (at least one cache hit).").Add(uint64(len(out.Found)))
	// Fleet-health history sample: the sweep just folded its per-agent
	// ledgers on this serial path, so the capture is deterministic.
	history.Observe("sweep", "sweep-discover", start+24)
	root.SetAttrInt("found", int64(len(out.Found))).
		SetAttrInt("datagrams", int64(stats.Probes)).
		End(start + 24)
	return out, stats, nil
}

// MeasureHitRates is the resilient hit-rate campaign: each probe slot is
// retried to a definitive answer or budget exhaustion, and — unlike the
// naive campaign, which keeps failures in its denominators — the rate uses
// answered probes only, so faults cost precision, not bias.
func (rp *ResilientProber) MeasureHitRates(top *topology.Topology, prefixes []topology.PrefixID, domain string, start simtime.Time, interval simtime.Time) (*HitRates, *SweepStats, error) {
	if interval <= 0 {
		interval = 5 * simtime.Minute
	}
	retryable := rp.Retry.Retryable
	if retryable == nil {
		rp.Retry.Retryable = faults.IsTransient
	}
	probesPer := int(24 / float64(interval))
	n := rp.shards()
	root := obs.StartSpan("cacheprobe.hitrates", start).
		SetAttrInt("targets", int64(len(prefixes))).
		SetAttrInt("shards", int64(n)).
		SetAttrInt("probes_per_prefix", int64(probesPer))
	type shardResult struct {
		hr *HitRates
		st *SweepStats
	}
	results := make([]shardResult, n)
	chunk := (len(prefixes) + n - 1) / n
	parallel.ForEach(n, rp.Workers, func(i int) {
		lo := i * chunk
		hi := min(lo+chunk, len(prefixes))
		if lo >= hi {
			return
		}
		sp := root.Child("shard", start).SetOrder(i).SetAttrInt("shard", int64(i))
		ss := rp.newShard(i)
		hr := &HitRates{
			ByPrefix:        map[topology.PrefixID]float64{},
			ByAS:            map[topology.ASN]float64{},
			ProbesPerPrefix: probesPer,
		}
		st := newSweepStats()
		for _, p := range prefixes[lo:hi] {
			pop := rp.PR.HomePoP(p)
			if pop == nil {
				continue
			}
			hits, answered, attempts := 0, 0, 0
			for r := 0; r < probesPer; r++ {
				sched := start + simtime.Time(float64(r))*interval
				hit, ok, att := rp.probe(ss, st, pop.ID, domain, p, sched)
				attempts += att
				if !ok {
					continue
				}
				answered++
				if hit {
					hits++
				}
			}
			st.Attempts[p] = attempts
			switch {
			case answered > 0:
				st.Outcome[p] = TargetProbedOK
			case attempts > 0:
				st.Outcome[p] = TargetGaveUp
				st.GiveUps++
			default:
				st.Outcome[p] = TargetSkipped
			}
			if answered > 0 {
				hr.ByPrefix[p] = float64(hits) / float64(answered)
			} else {
				hr.ByPrefix[p] = 0
			}
			hr.Failed += attempts - answered
			if asn, ok := top.OwnerOf(p); ok {
				hr.ByAS[asn] += float64(hits)
			}
		}
		for _, b := range ss.breakers {
			st.BreakerOpens += b.Opens
		}
		sp.SetAttrInt("datagrams", int64(st.Probes)).End(start + 24)
		results[i] = shardResult{hr, st}
	})
	rp.Retry.Retryable = retryable

	out := &HitRates{
		ByPrefix:        map[topology.PrefixID]float64{},
		ByAS:            map[topology.ASN]float64{},
		ProbesPerPrefix: probesPer,
	}
	stats := newSweepStats()
	for _, r := range results {
		if r.hr == nil {
			continue
		}
		out.Failed += r.hr.Failed
		for p, v := range r.hr.ByPrefix {
			out.ByPrefix[p] = v
		}
		for asn, v := range r.hr.ByAS {
			out.ByAS[asn] += v
		}
		stats.merge(r.st)
	}
	stats.reportObs("hitrates")
	history.Observe("sweep", "sweep-hitrates", start+24)
	root.SetAttrInt("datagrams", int64(stats.Probes)).End(start + 24)
	return out, stats, nil
}
