package cacheprobe

import (
	"math"
	"testing"

	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func discover(t testing.TB, w *world.World, rounds int) *Discovery {
	t.Helper()
	pb := &Prober{PR: w.PR, Domains: w.Cat.ECSDomains()[:8]}
	d, err := pb.DiscoverPrefixes(w.Top, w.Top.AllPrefixes(), 0, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiscoveryFindsBusyPrefixesOnly(t *testing.T) {
	w := world.Build(world.Tiny(1))
	d := discover(t, w, 4)
	if len(d.Found) == 0 {
		t.Fatal("nothing discovered")
	}
	// Infrastructure prefixes (no users → no queries) never hit.
	for p := range d.Found {
		if w.Users.UsersIn(p) == 0 {
			t.Errorf("userless prefix %v discovered", p)
		}
	}
	// Every large eyeball prefix that uses the public resolver is found;
	// the only misses among high-population prefixes are networks that
	// opted out of public DNS entirely.
	missedBig, optedOut := 0, 0
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		a := w.Top.ASes[asn]
		if a.SubscribersK < 3000 {
			continue
		}
		for _, p := range a.Prefixes {
			if w.Users.UsersIn(p) <= 20000 || d.Found[p] {
				continue
			}
			if w.Traffic.UsesPublicResolver(p) {
				missedBig++
			} else {
				optedOut++
			}
		}
	}
	if missedBig > 0 {
		t.Errorf("missed %d high-population public-DNS-using prefixes", missedBig)
	}
	if optedOut == 0 {
		t.Error("expected some opted-out prefixes among the misses")
	}
}

func TestDiscoveryTrafficWeightedRecallHigh(t *testing.T) {
	w := world.Build(world.Tiny(2))
	d := discover(t, w, 4)
	mx := w.Traffic.BuildMatrix()
	var total, found float64
	for p, b := range mx.RefCDNByPrefix {
		total += b
		if d.Found[p] {
			found += b
		}
	}
	if total == 0 {
		t.Fatal("no reference CDN traffic")
	}
	recall := found / total
	if recall < 0.85 {
		t.Errorf("traffic-weighted recall %.2f, want >= 0.85 (paper: 0.95)", recall)
	}
}

func TestPoPCountsSumToFound(t *testing.T) {
	w := world.Build(world.Tiny(3))
	d := discover(t, w, 3)
	counts := d.PoPCounts(w.PR)
	sum := 0
	for _, pc := range counts {
		sum += pc.Prefixes
	}
	if sum != len(d.Found) {
		t.Errorf("PoP counts sum %d != found %d", sum, len(d.Found))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i].Prefixes > counts[i-1].Prefixes {
			t.Fatal("PoP counts not sorted descending")
		}
	}
}

func TestMoreRoundsNeverFindLess(t *testing.T) {
	w := world.Build(world.Tiny(4))
	d1 := discover(t, w, 1)
	d4 := discover(t, w, 4)
	if len(d4.Found) < len(d1.Found) {
		t.Errorf("4 rounds found %d < 1 round %d", len(d4.Found), len(d1.Found))
	}
}

func TestHitRatesTrackActivity(t *testing.T) {
	w := world.Build(world.Tiny(5))
	pb := &Prober{PR: w.PR, Domains: w.Cat.ECSDomains()}
	domain := w.Cat.ECSDomains()[0]
	hr, err := pb.MeasureHitRates(w.Top, w.Top.AllPrefixes(), domain, 0, 15*simtime.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Per-AS hit rate should rank-correlate with true AS client traffic.
	mx := w.Traffic.BuildMatrix()
	var xs, ys []float64
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		if rate, ok := hr.ByAS[asn]; ok {
			xs = append(xs, rate)
			ys = append(ys, mx.ClientASBytes[asn])
		}
	}
	if len(xs) < 10 {
		t.Fatalf("only %d eyeballs measured", len(xs))
	}
	if rho := stats.Spearman(xs, ys); rho < 0.4 {
		t.Errorf("hit-rate vs activity Spearman %.2f, want > 0.4", rho)
	}
	for p, rate := range hr.ByPrefix {
		if rate < 0 || rate > 1 {
			t.Fatalf("hit rate %f out of range for %v", rate, p)
		}
	}
}

func TestHitRateZeroForIdle(t *testing.T) {
	w := world.Build(world.Tiny(6))
	pb := &Prober{PR: w.PR, Domains: w.Cat.ECSDomains()}
	domain := w.Cat.ECSDomains()[0]
	// Probe only hypergiant infrastructure prefixes.
	hgs := w.Top.ASesOfType(topology.Hypergiant)
	prefixes := w.Top.ASes[hgs[0]].Prefixes
	hr, err := pb.MeasureHitRates(w.Top, prefixes, domain, 0, simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for p, rate := range hr.ByPrefix {
		if rate != 0 {
			t.Errorf("infrastructure prefix %v has hit rate %f", p, rate)
		}
	}
}

func TestRateFromHitRateInversion(t *testing.T) {
	// Inverting p = 1 - exp(-rate*TTL) recovers the rate across regimes.
	for _, rate := range []float64{0.5, 5, 60, 600} { // queries/hour
		ttl := 60 // seconds
		p := 1 - mathExp(-rate*float64(ttl)/3600)
		got := RateFromHitRate(p, 1000000, ttl)
		if got < rate*0.99 || got > rate*1.01 {
			t.Errorf("rate %f inverted to %f", rate, got)
		}
	}
	if RateFromHitRate(0, 100, 60) != 0 {
		t.Error("zero hit rate should invert to zero")
	}
	if RateFromHitRate(0.5, 100, 0) != 0 {
		t.Error("zero TTL should yield zero")
	}
	// Saturated observations are clamped, not infinite.
	v := RateFromHitRate(1.0, 96, 60)
	if v <= 0 || v > 1e6 {
		t.Errorf("saturated inversion %f out of range", v)
	}
	// More probes resolve larger saturated rates.
	if RateFromHitRate(1.0, 1000, 60) <= RateFromHitRate(1.0, 10, 60) {
		t.Error("probe count does not extend resolvable range")
	}
}

func mathExp(x float64) float64 { return math.Exp(x) }
