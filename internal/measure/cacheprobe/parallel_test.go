package cacheprobe

import (
	"testing"

	"itmap/internal/simtime"
	"itmap/internal/world"
)

func TestParallelDiscoveryIdentical(t *testing.T) {
	w := world.Build(world.Tiny(31))
	pb := &Prober{PR: w.PR, Domains: w.Cat.ECSDomains()[:6]}
	prefixes := w.Top.AllPrefixes()
	serial, err := pb.DiscoverPrefixes(w.Top, prefixes, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := pb.DiscoverPrefixesParallel(w.Top, prefixes, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Found) != len(parallel.Found) || serial.Probes != parallel.Probes {
		t.Fatalf("parallel diverged: %d/%d found, %d/%d probes",
			len(parallel.Found), len(serial.Found), parallel.Probes, serial.Probes)
	}
	for p := range serial.Found {
		if !parallel.Found[p] {
			t.Fatalf("prefix %v lost in parallel sweep", p)
		}
	}
	for pop, c := range serial.ByPoP {
		if parallel.ByPoP[pop] != c {
			t.Fatalf("PoP %d count %d vs %d", pop, parallel.ByPoP[pop], c)
		}
	}
}

func TestParallelHitRatesIdentical(t *testing.T) {
	w := world.Build(world.Tiny(32))
	pb := &Prober{PR: w.PR}
	domain := w.Cat.ECSDomains()[0]
	prefixes := w.Top.AllPrefixes()
	serial, err := pb.MeasureHitRates(w.Top, prefixes, domain, 0, simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := pb.MeasureHitRatesParallel(w.Top, prefixes, domain, 0, simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.ByPrefix) != len(parallel.ByPrefix) {
		t.Fatalf("prefix counts differ: %d vs %d", len(parallel.ByPrefix), len(serial.ByPrefix))
	}
	for p, v := range serial.ByPrefix {
		if parallel.ByPrefix[p] != v {
			t.Fatalf("prefix %v rate %f vs %f", p, parallel.ByPrefix[p], v)
		}
	}
	for asn, v := range serial.ByAS {
		if parallel.ByAS[asn] != v {
			t.Fatalf("AS %d count %f vs %f", asn, parallel.ByAS[asn], v)
		}
	}
}

func TestParallelSmallInputFallsBack(t *testing.T) {
	w := world.Build(world.Tiny(33))
	pb := &Prober{PR: w.PR, Domains: w.Cat.ECSDomains()[:2]}
	few := w.Top.AllPrefixes()[:10]
	d, err := pb.DiscoverPrefixesParallel(w.Top, few, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Probes == 0 {
		t.Error("small input not probed")
	}
}
