package cacheprobe

import (
	"itmap/internal/dnssim"
	"itmap/internal/faults"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// HourlyProfile is a 24-bucket activity curve recovered from cache probing
// — the "Hourly" temporal precision Table 1 wants for relative activity.
// Prefixes populate caches more often at their users' local evening peak,
// so per-hour hit counts trace the diurnal demand curve.
type HourlyProfile struct {
	// Hits[h] counts cache hits observed during UTC hour h.
	Hits [24]float64
	// Probes[h] counts probes issued during UTC hour h.
	Probes [24]int
	// Failed counts probes lost to transient faults; failures stay in
	// the per-hour denominators, biasing the naive curve downward in
	// hours where the substrate misbehaved.
	Failed int
}

// MeasureHourlyProfile probes the domain for every given prefix (typically
// one AS's prefixes) every interval across one simulated day, bucketing
// hits by UTC hour.
func (pb *Prober) MeasureHourlyProfile(top *topology.Topology, prefixes []topology.PrefixID, domain string, start simtime.Time, interval simtime.Time) (*HourlyProfile, error) {
	if interval <= 0 {
		interval = 15 * simtime.Minute
	}
	hp := &HourlyProfile{}
	for _, p := range prefixes {
		pop := pb.PR.HomePoP(p)
		if pop == nil {
			continue
		}
		for at := start; at < start+24; at += interval {
			hit, err := pb.PR.ProbeCacheOpts(pop.ID, domain, p, at, dnssim.ProbeOpts{Source: pb.Source})
			h := int(at.UTCHour())
			if err != nil {
				if faults.IsTransient(err) {
					hp.Probes[h]++
					hp.Failed++
					continue
				}
				return nil, err
			}
			hp.Probes[h]++
			if hit {
				hp.Hits[h]++
			}
		}
	}
	return hp, nil
}

// Rate returns the hit rate in UTC hour h (0 with no probes). Hours wrap.
func (hp *HourlyProfile) Rate(h int) float64 {
	h = ((h % 24) + 24) % 24
	if hp.Probes[h] == 0 {
		return 0
	}
	return hp.Hits[h] / float64(hp.Probes[h])
}

// PeakUTCHour returns the UTC hour with the highest hit rate, smoothing
// over a 3-hour window to suppress per-window noise.
func (hp *HourlyProfile) PeakUTCHour() int {
	best, bestV := 0, -1.0
	for h := 0; h < 24; h++ {
		v := hp.Rate(h-1) + hp.Rate(h) + hp.Rate(h+23)
		if v > bestV {
			best, bestV = h, v
		}
	}
	return best
}

// Swing returns (max − min)/mean over hourly rates — the diurnality of the
// recovered curve.
func (hp *HourlyProfile) Swing() float64 {
	lo, hi, sum, n := 1.0, 0.0, 0.0, 0
	for h := 0; h < 24; h++ {
		if hp.Probes[h] == 0 {
			continue
		}
		r := hp.Rate(h)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		sum += r
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return (hi - lo) / (sum / float64(n))
}

// HourDistance returns the circular distance between two hours (0..12).
func HourDistance(a, b int) int {
	d := (a - b + 48) % 24
	if d > 12 {
		d = 24 - d
	}
	return d
}
