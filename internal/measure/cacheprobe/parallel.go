package cacheprobe

import (
	"runtime"
	"sync"

	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// Probe outcomes are pure functions of (PoP, domain, prefix, TTL window),
// so sweeps parallelize with byte-identical results. A real campaign is
// bounded by resolver rate limits instead; Workers models the prober's
// concurrency, not the resolver's.

// Workers returns the worker count for parallel sweeps (GOMAXPROCS).
func workers() int { return runtime.GOMAXPROCS(0) }

// DiscoverPrefixesParallel is DiscoverPrefixes fanned out over worker
// goroutines. Results are identical to the serial sweep.
func (pb *Prober) DiscoverPrefixesParallel(top *topology.Topology, prefixes []topology.PrefixID, start simtime.Time, rounds int) (*Discovery, error) {
	if rounds < 1 {
		rounds = 1
	}
	n := workers()
	if n < 2 || len(prefixes) < 256 {
		return pb.DiscoverPrefixes(top, prefixes, start, rounds)
	}
	type shard struct {
		d   *Discovery
		err error
	}
	shards := make([]shard, n)
	var wg sync.WaitGroup
	chunk := (len(prefixes) + n - 1) / n
	for w := 0; w < n; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(prefixes))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			d, err := pb.DiscoverPrefixes(top, prefixes[lo:hi], start, rounds)
			shards[w] = shard{d, err}
		}(w, lo, hi)
	}
	wg.Wait()
	out := &Discovery{
		Found:     map[topology.PrefixID]bool{},
		FoundASes: map[topology.ASN]bool{},
		ByPoP:     map[int]int{},
	}
	for _, s := range shards {
		if s.d == nil {
			continue
		}
		if s.err != nil {
			return nil, s.err
		}
		for p := range s.d.Found {
			out.Found[p] = true
		}
		for asn := range s.d.FoundASes {
			out.FoundASes[asn] = true
		}
		for pop, c := range s.d.ByPoP {
			out.ByPoP[pop] += c
		}
		out.Probes += s.d.Probes
		out.Failed += s.d.Failed
	}
	return out, nil
}

// MeasureHitRatesParallel is MeasureHitRates fanned out over workers, with
// identical results.
func (pb *Prober) MeasureHitRatesParallel(top *topology.Topology, prefixes []topology.PrefixID, domain string, start simtime.Time, interval simtime.Time) (*HitRates, error) {
	n := workers()
	if n < 2 || len(prefixes) < 256 {
		return pb.MeasureHitRates(top, prefixes, domain, start, interval)
	}
	type shard struct {
		hr  *HitRates
		err error
	}
	shards := make([]shard, n)
	var wg sync.WaitGroup
	chunk := (len(prefixes) + n - 1) / n
	for w := 0; w < n; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(prefixes))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			hr, err := pb.MeasureHitRates(top, prefixes[lo:hi], domain, start, interval)
			shards[w] = shard{hr, err}
		}(w, lo, hi)
	}
	wg.Wait()
	out := &HitRates{
		ByPrefix: map[topology.PrefixID]float64{},
		ByAS:     map[topology.ASN]float64{},
	}
	for _, s := range shards {
		if s.hr == nil {
			continue
		}
		if s.err != nil {
			return nil, s.err
		}
		out.ProbesPerPrefix = s.hr.ProbesPerPrefix
		out.Failed += s.hr.Failed
		for p, v := range s.hr.ByPrefix {
			out.ByPrefix[p] = v
		}
		for asn, v := range s.hr.ByAS {
			out.ByAS[asn] += v
		}
	}
	return out, nil
}
