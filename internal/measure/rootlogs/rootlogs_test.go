package rootlogs

import (
	"testing"

	"itmap/internal/topology"
	"itmap/internal/world"
)

func TestCrawlIdentifiesEyeballASes(t *testing.T) {
	w := world.Build(world.Tiny(1))
	c := CrawlDay(w.Roots, w.Traffic, 0)
	if c.LettersUsed == 0 {
		t.Fatal("no usable letters")
	}
	if c.LettersUsed == 13 {
		t.Error("expected some anonymized letters")
	}
	if c.HiddenQueries <= 0 {
		t.Error("anonymized letters should hide some queries")
	}
	clients := c.ClientASes(w.PR.Owner)
	if len(clients) == 0 {
		t.Fatal("no client ASes identified")
	}
	if _, has := clients[w.PR.Owner]; has {
		t.Error("public resolver owner not excluded")
	}
	// Every identified AS either hosts users or is a transit provider
	// whose resolver serves outsourcing customers — the attribution
	// error the clients-follow-their-resolver assumption makes.
	sawOutsourced := false
	for asn := range clients {
		if w.Users.ASUsers(asn) > 0 {
			continue
		}
		if w.Top.ASes[asn].Type != topology.Transit {
			t.Errorf("AS %d (%v) in crawl hosts no users and is no resolver host",
				asn, w.Top.ASes[asn].Type)
		}
		sawOutsourced = true
	}
	if !sawOutsourced {
		t.Error("expected some outsourced-resolver attribution to transit")
	}
	// Eyeballs running their own resolver appear; outsourcing ones are
	// attributed elsewhere.
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		_, ok := clients[asn]
		if w.Traffic.OutsourcesResolver(asn) {
			continue
		}
		if !ok {
			t.Errorf("self-resolving eyeball %d missing from crawl", asn)
		}
	}
}

func TestCrawlActivityProportionalToUsers(t *testing.T) {
	w := world.Build(world.Tiny(2))
	c := CrawlDay(w.Roots, w.Traffic, 0)
	clients := c.ClientASes(w.PR.Owner)
	// Bigger eyeballs produce more Chromium queries (within adoption
	// skew): check the extremes.
	var biggest, smallest topology.ASN
	var bigU, smallU float64 = 0, 1e18
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		u := w.Users.ASUsers(asn)
		if u > bigU {
			bigU, biggest = u, asn
		}
		if u < smallU {
			smallU, smallest = u, asn
		}
	}
	if clients[biggest] <= clients[smallest] {
		t.Errorf("activity(big=%f) <= activity(small=%f)", clients[biggest], clients[smallest])
	}
}

func TestFullyAnonymizedRootsUseless(t *testing.T) {
	w := world.Build(world.Tiny(3))
	allAnon := w.Roots
	for i := range allAnon.Letters {
		allAnon.Letters[i].Anonymized = true
	}
	c := CrawlDay(allAnon, w.Traffic, 0)
	if c.LettersUsed != 0 || len(c.ActivityByResolverAS) != 0 {
		t.Error("fully anonymized roots should yield nothing")
	}
	if c.HiddenQueries <= 0 {
		t.Error("hidden query count missing")
	}
}

func TestCrawlStableAcrossLetters(t *testing.T) {
	// Using fewer letters scales the totals but not the AS set.
	w := world.Build(world.Tiny(4))
	cAll := CrawlDay(w.Roots, w.Traffic, 0)
	for i := range w.Roots.Letters {
		w.Roots.Letters[i].Anonymized = i != 0 // keep only A
	}
	cOne := CrawlDay(w.Roots, w.Traffic, 0)
	if len(cOne.ActivityByResolverAS) != len(cAll.ActivityByResolverAS) {
		t.Errorf("AS set changed with letter count: %d vs %d",
			len(cOne.ActivityByResolverAS), len(cAll.ActivityByResolverAS))
	}
}
