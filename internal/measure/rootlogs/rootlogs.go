// Package rootlogs implements the paper's §3.1.2 approach 2: crawling root
// DNS logs for Chromium's random-label interception probes. Probe counts
// per recursive resolver proxy client activity; with the assumption that
// clients share their resolver's AS, the crawl locates client ASes and
// estimates their relative activity. The crawl only sees letters that do
// not anonymize logs, and public-resolver egress hides those clients — the
// biases §3.1.3 discusses.
package rootlogs

import (
	"itmap/internal/dnssim"
	"itmap/internal/topology"
)

// Crawl is the outcome of crawling one day of root logs.
type Crawl struct {
	// ActivityByResolverAS is the Chromium query volume attributed to
	// each resolver's AS across usable letters.
	ActivityByResolverAS map[topology.ASN]float64
	// ActivityByResolverPrefix keeps the finer per-resolver-address
	// counts, which resolver-client association (§3.1.3) can
	// re-attribute to client networks.
	ActivityByResolverPrefix map[topology.PrefixID]float64
	// LettersUsed is how many of the 13 letters contributed.
	LettersUsed int
	// LettersDown counts letters whose log pipeline was out for the day
	// (transient outages injected by a fault plan).
	LettersDown int
	// HiddenQueries counts queries visible only as anonymized records.
	HiddenQueries float64
}

// CrawlDay collects one day's logs from every non-anonymized letter and
// aggregates Chromium query counts per resolver AS.
func CrawlDay(rs *dnssim.RootSystem, src dnssim.ChromiumSource, day int) *Crawl {
	logs := rs.DayLogs(day, src)
	c := &Crawl{
		ActivityByResolverAS:     map[topology.ASN]float64{},
		ActivityByResolverPrefix: map[topology.PrefixID]float64{},
	}
	for _, l := range rs.Letters {
		entries, ok := logs[l.Letter]
		if !ok {
			// The letter published nothing today (transient outage);
			// the crawl simply has one fewer source.
			c.LettersDown++
			continue
		}
		if l.Anonymized {
			for _, e := range entries {
				c.HiddenQueries += e.Queries
			}
			continue
		}
		c.LettersUsed++
		for _, e := range entries {
			c.ActivityByResolverAS[e.ResolverASN] += e.Queries
			c.ActivityByResolverPrefix[e.ResolverPrefix] += e.Queries
		}
	}
	return c
}

// ClientASes returns ASes the crawl identifies as hosting clients, under
// the clients-follow-their-resolver assumption. The public resolver's own
// AS is excluded: its egress aggregates clients from everywhere and places
// them nowhere.
func (c *Crawl) ClientASes(publicResolverOwner topology.ASN) map[topology.ASN]float64 {
	out := map[topology.ASN]float64{}
	for asn, q := range c.ActivityByResolverAS {
		if asn == publicResolverOwner {
			continue
		}
		out[asn] = q
	}
	return out
}
