package ipid

import (
	"math"
	"testing"

	"itmap/internal/simtime"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func meter(t testing.TB, seed int64) (*world.World, *Meter) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	mx := w.Traffic.BuildMatrix()
	return w, NewMeter(w.Top, mx, seed)
}

func TestVelocityEstimateMatchesTruth(t *testing.T) {
	w, m := meter(t, 1)
	// Pick a loaded transit AS.
	var asn topology.ASN
	for _, a := range w.Top.ASesOfType(topology.Transit) {
		asn = a
		break
	}
	samples := ProbeVelocity(m, asn, 0, 24, 15*simtime.Minute)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for _, s := range samples {
		truth := m.TrueHourlyRate(asn, s.T)
		if truth > 500 && math.Abs(s.Rate-truth)/truth > 0.25 {
			t.Errorf("at t=%v velocity %.0f vs truth %.0f", s.T, s.Rate, truth)
		}
	}
}

func TestVelocityDiurnal(t *testing.T) {
	w, m := meter(t, 2)
	diurnal := 0
	checked := 0
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		samples := ProbeVelocity(m, asn, 0, 72, 30*simtime.Minute)
		if MeanRate(samples) < 100 {
			continue // background-dominated router; skip
		}
		checked++
		if DiurnalitySwing(samples) > 0.4 {
			diurnal++
		}
	}
	if checked == 0 {
		t.Skip("no loaded eyeball routers")
	}
	if frac := float64(diurnal) / float64(checked); frac < 0.8 {
		t.Errorf("only %.0f%% of loaded routers look diurnal", frac*100)
	}
}

func TestVelocityCorrelatesWithLoad(t *testing.T) {
	w := world.Build(world.Tiny(3))
	mx := w.Traffic.BuildMatrix()
	m := NewMeter(w.Top, mx, 3)
	var xs, ys []float64
	for _, asn := range w.Top.ASNs() {
		if mx.ASLoad[asn] == 0 {
			continue
		}
		samples := ProbeVelocity(m, asn, 0, 24, 30*simtime.Minute)
		xs = append(xs, MeanRate(samples))
		ys = append(ys, mx.ASLoad[asn])
	}
	if len(xs) < 20 {
		t.Fatalf("only %d routers probed", len(xs))
	}
	if rho := stats.Spearman(xs, ys); rho < 0.9 {
		t.Errorf("velocity vs load Spearman %.2f, want > 0.9", rho)
	}
}

func TestCounterWrapsHandled(t *testing.T) {
	_, m := meter(t, 4)
	// The busiest router wraps within hours; frequent sampling must
	// still recover a sane velocity.
	var busiest topology.ASN
	best := 0.0
	for asn, l := range m.load {
		if l > best {
			best, busiest = l, asn
		}
	}
	fast := ProbeVelocity(m, busiest, 0, 12, 10*simtime.Minute)
	truthMean := 0.0
	for _, s := range fast {
		truthMean += m.TrueHourlyRate(busiest, s.T)
	}
	truthMean /= float64(len(fast))
	got := MeanRate(fast)
	if math.Abs(got-truthMean)/truthMean > 0.1 {
		t.Errorf("wrap handling broke velocity: got %.0f, truth %.0f", got, truthMean)
	}
}

func TestBackgroundOnlyRouterFlat(t *testing.T) {
	_, m := meter(t, 5)
	// An AS with zero traffic load still answers pings with the
	// background rate and shows no diurnal swing.
	var idle topology.ASN
	found := false
	for asn, l := range m.load {
		if l == 0 {
			idle, found = asn, true
			break
		}
	}
	if !found {
		t.Skip("no idle AS")
	}
	samples := ProbeVelocity(m, idle, 0, 48, simtime.Hour)
	if swing := DiurnalitySwing(samples); swing > 0.2 {
		t.Errorf("idle router shows diurnal swing %.2f", swing)
	}
	if mr := MeanRate(samples); math.Abs(mr-m.BackgroundRate) > 2 {
		t.Errorf("idle router rate %.1f, want background %.1f", mr, m.BackgroundRate)
	}
}

func TestDiurnalitySwingEdgeCases(t *testing.T) {
	if DiurnalitySwing(nil) != 0 {
		t.Error("empty samples should score 0")
	}
	flat := []Sample{{T: 1, Rate: 5}, {T: 13, Rate: 5}}
	if DiurnalitySwing(flat) != 0 {
		t.Error("flat series should score 0")
	}
	if MeanRate(nil) != 0 {
		t.Error("empty MeanRate should be 0")
	}
}
