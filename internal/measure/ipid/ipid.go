// Package ipid implements the paper's §3.1.3 IP-ID velocity methodology:
// many routers source IP ID values from a global incrementing counter whose
// velocity tracks the traffic they forward (e.g. via flow-export packets).
// By pinging a router interface repeatedly and differencing the returned
// 16-bit IDs (mod 2^16), one estimates the counter velocity; its diurnal
// swing estimates relative user-traffic levels through the router.
//
// The Meter half of the package is substrate (how simulated routers derive
// their counters from ground-truth loads); the Probe half is the
// measurement tool, which sees only 16-bit counter samples.
package ipid

import (
	"math"

	"itmap/internal/geo"
	"itmap/internal/randx"
	"itmap/internal/simtime"
	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/users"
)

// counterMod is the IP-ID space size.
const counterMod = 65536

// diurnalMean is the day-average of users.DiurnalFactor.
const diurnalMean = 0.65

// Meter models every AS border router's IP-ID counter. A router's counter
// advances proportionally to the AS's forwarded traffic, phased by the AS's
// local time, plus a small constant background rate.
type Meter struct {
	top  *topology.Topology
	seed uint64

	// scale converts bytes/hour to counter increments/hour, normalized
	// so the busiest router peaks near targetPeakRate.
	scale float64
	// BackgroundRate is the constant counter advance (control-plane
	// chatter) in increments/hour.
	BackgroundRate float64

	load   map[topology.ASN]float64 // daily bytes through the AS
	offset map[topology.ASN]float64 // UTC offset of the AS's location
}

// targetPeakRate keeps velocities comfortably measurable with sub-hour
// sampling (wrap takes > 3h at peak).
const targetPeakRate = 18000.0

// NewMeter builds router counters from a ground-truth matrix.
func NewMeter(top *topology.Topology, mx *traffic.Matrix, seed int64) *Meter {
	m := &Meter{
		top:            top,
		seed:           uint64(seed),
		BackgroundRate: 40,
		load:           map[topology.ASN]float64{},
		offset:         map[topology.ASN]float64{},
	}
	maxHourly := 0.0
	for _, asn := range top.ASNs() {
		l := mx.ASLoad[asn]
		m.load[asn] = l
		if h := l / 24; h > maxHourly {
			maxHourly = h
		}
		city := top.PrimaryCity(asn)
		if c, err := geo.CountryByCode(city.Country); err == nil {
			m.offset[asn] = c.UTCOffsetHours
		}
	}
	if maxHourly > 0 {
		m.scale = targetPeakRate / (maxHourly / diurnalMean)
	}
	return m
}

// TrueHourlyRate is the ground-truth counter velocity of an AS's router at
// time t (increments/hour) — used only to validate the estimator.
func (m *Meter) TrueHourlyRate(asn topology.ASN, t simtime.Time) float64 {
	local := t.UTCHour() + m.offset[asn]
	f := users.DiurnalFactor(math.Mod(local+48, 24))
	return m.BackgroundRate + m.scale*m.load[asn]/24*f/diurnalMean
}

// cumDiurnal is the antiderivative of DiurnalFactor over continuous local
// hours: ∫(0.65 + 0.35·cos(2π(h−20)/24))dh.
func cumDiurnal(h float64) float64 {
	return 0.65*h + 0.35*24/(2*math.Pi)*math.Sin(2*math.Pi*(h-20)/24)
}

// CounterAt returns what a ping to the AS's router interface reveals at
// time t: the low 16 bits of the counter.
func (m *Meter) CounterAt(asn topology.ASN, t simtime.Time) uint16 {
	local := float64(t) + m.offset[asn]
	cum := m.BackgroundRate*float64(t) +
		m.scale*m.load[asn]/24*(cumDiurnal(local)-cumDiurnal(m.offset[asn]))/diurnalMean
	base := float64(randx.Hash64(m.seed, 0x1b1d, uint64(asn)) % counterMod)
	return uint16(int64(base+cum) % counterMod)
}

// Sample is one velocity estimate.
type Sample struct {
	T    simtime.Time
	Rate float64 // estimated increments/hour
}

// ProbeVelocity pings the router every interval in [start, end) and returns
// per-interval velocity estimates, handling 16-bit wraparound. The interval
// must be short enough that the counter advances < 2^16 between pings.
func ProbeVelocity(m *Meter, asn topology.ASN, start, end, interval simtime.Time) []Sample {
	if interval <= 0 {
		interval = 30 * simtime.Minute
	}
	var out []Sample
	prev := m.CounterAt(asn, start)
	for t := start + interval; t < end; t += interval {
		cur := m.CounterAt(asn, t)
		delta := (int(cur) - int(prev) + counterMod) % counterMod
		out = append(out, Sample{T: t, Rate: float64(delta) / float64(interval)})
		prev = cur
	}
	return out
}

// DiurnalitySwing summarizes how diurnal a velocity series is:
// (max − min) / mean over hourly buckets. Flat series score ~0; fully
// diurnal routers score well above 0.5.
func DiurnalitySwing(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var hourly [24]float64
	var counts [24]int
	for _, s := range samples {
		h := int(s.T.UTCHour())
		hourly[h] += s.Rate
		counts[h]++
	}
	lo, hi, sum, n := math.Inf(1), 0.0, 0.0, 0
	for h := 0; h < 24; h++ {
		if counts[h] == 0 {
			continue
		}
		v := hourly[h] / float64(counts[h])
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		sum += v
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := sum / float64(n)
	return (hi - lo) / mean
}

// MeanRate returns the average estimated velocity.
func MeanRate(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range samples {
		total += s.Rate
	}
	return total / float64(len(samples))
}
