package resolvermap

import (
	"math"
	"testing"

	"itmap/internal/dnssim"
	"itmap/internal/measure/rootlogs"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func collect(t testing.TB, w *world.World) *Association {
	t.Helper()
	return Collect(w.Top, w.Users, w.Traffic, w.PR, DefaultConfig())
}

func TestAssociationCoversUserASes(t *testing.T) {
	w := world.Build(world.Tiny(1))
	a := collect(t, w)
	if a.Views <= 0 {
		t.Fatal("no instrumented views")
	}
	userASes := 0
	for _, asn := range w.Top.ASNs() {
		if w.Users.ASUsers(asn) > 0 {
			userASes++
		}
	}
	if got := a.AssociatedClientASes(); got != userASes {
		t.Errorf("associated %d client ASes, world has %d with users", got, userASes)
	}
}

func TestPublicResolverAssociation(t *testing.T) {
	w := world.Build(world.Tiny(2))
	a := collect(t, w)
	prPrefix, ok := dnssim.ResolverOfAS(w.Top, w.PR.Owner)
	if !ok {
		t.Fatal("public resolver has no prefix")
	}
	m := a.Clients[prPrefix]
	if len(m) < 10 {
		t.Fatalf("public resolver associated with only %d client ASes", len(m))
	}
	// Shares behind the public resolver reflect user populations times
	// adoption.
	var xs, ys []float64
	for asn, v := range m {
		xs = append(xs, v)
		ys = append(ys, w.Users.ASUsers(asn))
	}
	if rho := stats.Spearman(xs, ys); rho < 0.8 {
		t.Errorf("public-resolver client shares vs users Spearman %.2f", rho)
	}
}

func TestOutsourcedClientsAssociatedWithProvider(t *testing.T) {
	w := world.Build(world.Tiny(3))
	a := collect(t, w)
	found := false
	for _, asn := range w.Top.ASNs() {
		if w.Users.ASUsers(asn) == 0 || !w.Traffic.OutsourcesResolver(asn) {
			continue
		}
		provs := w.Top.ASes[asn].Providers()
		if len(provs) == 0 {
			continue
		}
		rp, ok := dnssim.ResolverOfAS(w.Top, provs[0])
		if !ok {
			continue
		}
		if a.Clients[rp][asn] > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no outsourced client associated with its provider's resolver")
	}
}

func TestClientShareNormalized(t *testing.T) {
	w := world.Build(world.Tiny(4))
	a := collect(t, w)
	for _, rp := range a.Resolvers() {
		total := 0.0
		for asn := range a.Clients[rp] {
			total += a.ClientShare(rp, asn)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("shares for resolver %v sum to %f", rp, total)
		}
	}
	if a.ClientShare(0, 0) != 0 {
		t.Error("unknown resolver share should be 0")
	}
}

func TestReattributeImprovesRootAttribution(t *testing.T) {
	w := world.Build(world.Tiny(5))
	a := collect(t, w)
	crawl := rootlogs.CrawlDay(w.Roots, w.Traffic, 0)

	naive := crawl.ClientASes(w.PR.Owner)
	corrected := a.Reattribute(w.Top, crawl.ActivityByResolverPrefix)

	// Correctness proxy: rank correlation against true per-AS users over
	// all user-hosting ASes (missing = 0).
	var nx, ny, cx, cy []float64
	for _, asn := range w.Top.ASNs() {
		u := w.Users.ASUsers(asn)
		if u == 0 {
			continue
		}
		nx = append(nx, naive[asn])
		ny = append(ny, u)
		cx = append(cx, corrected[asn])
		cy = append(cy, u)
	}
	rhoNaive := stats.Spearman(nx, ny)
	rhoCorrected := stats.Spearman(cx, cy)
	if rhoCorrected <= rhoNaive {
		t.Errorf("association did not improve attribution: naive %.3f vs corrected %.3f",
			rhoNaive, rhoCorrected)
	}
	// Outsourced-resolver eyeballs get activity back.
	recovered := false
	for _, asn := range w.Top.ASesOfType(topology.Eyeball) {
		if w.Traffic.OutsourcesResolver(asn) && naive[asn] == 0 && corrected[asn] > 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Error("no outsourced eyeball recovered by reattribution")
	}
}

func TestReattributeFallbackWithoutAssociation(t *testing.T) {
	w := world.Build(world.Tiny(6))
	a := &Association{Clients: map[topology.PrefixID]map[topology.ASN]float64{}}
	rp, _ := dnssim.ResolverOfAS(w.Top, w.Top.ASNs()[0])
	out := a.Reattribute(w.Top, map[topology.PrefixID]float64{rp: 100})
	if out[w.Top.ASNs()[0]] != 100 {
		t.Error("unassociated resolver volume should fall back to the resolver's AS")
	}
}
