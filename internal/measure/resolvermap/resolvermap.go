// Package resolvermap implements the §3.1.3 proposal to "deploy techniques
// to associate recursive resolvers with their clients (e.g., embedding
// measurements of the associations in popular pages)" — the Mao et al.
// technique. A popular page embeds a one-time hostname; the client's HTTP
// fetch reveals its address while the DNS lookup for the same token reveals
// its recursive resolver. Joining the two yields, per resolver, the
// distribution of client networks behind it.
//
// The association is what lets resolver-grained signals (root-log crawls)
// be re-attributed to client networks: without it, clients of outsourced or
// public resolvers are counted in the wrong AS or not at all.
package resolvermap

import (
	"sort"

	"itmap/internal/dnssim"
	"itmap/internal/order"
	"itmap/internal/topology"
	"itmap/internal/traffic"
	"itmap/internal/users"
)

// Association is the measured resolver→clients map.
type Association struct {
	// Clients[resolver prefix][client AS] is the number of associated
	// page views whose DNS arrived via that resolver.
	Clients map[topology.PrefixID]map[topology.ASN]float64
	// Views is the total number of instrumented page views.
	Views float64
}

// Config tunes the instrumentation campaign.
type Config struct {
	// ViewsPerUserPerDay is how many instrumented page views one user
	// generates (the beacon rides a popular page).
	ViewsPerUserPerDay float64
	// SampleRate is the fraction of views carrying the beacon.
	SampleRate float64
}

// DefaultConfig instruments a popular page lightly.
func DefaultConfig() Config {
	return Config{ViewsPerUserPerDay: 8, SampleRate: 0.02}
}

// Collect runs one day of the instrumentation campaign over every user
// prefix: views split between the ISP resolver path (possibly outsourced to
// the provider's resolver) and the public resolver, exactly as real client
// stub configuration would.
func Collect(top *topology.Topology, um *users.Model, tm *traffic.Model, pr *dnssim.PublicResolver, cfg Config) *Association {
	if cfg.ViewsPerUserPerDay <= 0 {
		cfg.ViewsPerUserPerDay = 8
	}
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 0.02
	}
	a := &Association{Clients: map[topology.PrefixID]map[topology.ASN]float64{}}
	add := func(resolver topology.PrefixID, client topology.ASN, views float64) {
		if views <= 0 {
			return
		}
		m := a.Clients[resolver]
		if m == nil {
			m = map[topology.ASN]float64{}
			a.Clients[resolver] = m
		}
		m[client] += views
		a.Views += views
	}
	publicResolverPrefix, havePublic := dnssim.ResolverOfAS(top, pr.Owner)
	for _, asn := range top.ASNs() {
		as := top.ASes[asn]
		u := um.ASUsers(asn)
		if u == 0 {
			continue
		}
		views := u * cfg.ViewsPerUserPerDay * cfg.SampleRate
		share := pr.AdoptionShare(as.Country)
		// Public-resolver path: the beacon's authoritative sees the
		// resolver egress; the HTTP fetch sees the client.
		if havePublic {
			add(publicResolverPrefix, asn, views*share)
		}
		// ISP path: the AS's own resolver, or the provider's when the
		// network outsources DNS.
		resolverAS := asn
		if tm.OutsourcesResolver(asn) {
			if provs := as.Providers(); len(provs) > 0 {
				resolverAS = provs[0]
			}
		}
		if rp, ok := dnssim.ResolverOfAS(top, resolverAS); ok {
			add(rp, asn, views*(1-share))
		}
	}
	return a
}

// ClientShare returns the fraction of a resolver's associated views coming
// from the given client AS.
func (a *Association) ClientShare(resolver topology.PrefixID, client topology.ASN) float64 {
	m := a.Clients[resolver]
	if len(m) == 0 {
		return 0
	}
	total := order.SumValues(m)
	if total == 0 {
		return 0
	}
	return m[client] / total
}

// Resolvers returns all resolver prefixes seen, ascending.
func (a *Association) Resolvers() []topology.PrefixID {
	out := make([]topology.PrefixID, 0, len(a.Clients))
	for rp := range a.Clients {
		out = append(out, rp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AssociatedClientASes returns how many distinct client ASes are associated
// with at least one resolver.
func (a *Association) AssociatedClientASes() int {
	seen := map[topology.ASN]bool{}
	for _, m := range a.Clients {
		for asn := range m {
			seen[asn] = true
		}
	}
	return len(seen)
}

// EstimateAdoption measures each country's public-resolver adoption share
// from the association data: the fraction of a country's instrumented page
// views whose DNS arrived via the public resolver. This is the §3.1.3
// bias knob — "usage of Google Public DNS ... may be skewed" — measured
// rather than assumed.
func (a *Association) EstimateAdoption(top *topology.Topology, publicResolver topology.PrefixID) map[string]float64 {
	viaPublic := map[string]float64{}
	total := map[string]float64{}
	for _, rp := range order.Keys(a.Clients) {
		clients := a.Clients[rp]
		isPublic := rp == publicResolver
		for _, asn := range order.Keys(clients) {
			as := top.ASes[asn]
			if as == nil || as.Country == "ZZ" {
				continue
			}
			total[as.Country] += clients[asn]
			if isPublic {
				viaPublic[as.Country] += clients[asn]
			}
		}
	}
	out := map[string]float64{}
	for c, t := range total {
		if t > 0 {
			out[c] = viaPublic[c] / t
		}
	}
	return out
}

// Reattribute converts a resolver-grained activity map (e.g. a root-log
// crawl's per-resolver Chromium counts) into a client-AS-grained one by
// splitting each resolver's volume across its associated client networks.
// Resolvers without an association keep their naive resolver-AS attribution
// (attributed to owner of the resolver prefix).
func (a *Association) Reattribute(top *topology.Topology, byResolverPrefix map[topology.PrefixID]float64) map[topology.ASN]float64 {
	out := map[topology.ASN]float64{}
	for _, rp := range order.Keys(byResolverPrefix) {
		volume := byResolverPrefix[rp]
		m := a.Clients[rp]
		if len(m) == 0 {
			if owner, ok := top.OwnerOf(rp); ok {
				out[owner] += volume
			}
			continue
		}
		total := order.SumValues(m)
		for _, client := range order.Keys(m) {
			out[client] += volume * m[client] / total
		}
	}
	return out
}
