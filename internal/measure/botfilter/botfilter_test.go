package botfilter

import (
	"testing"

	"itmap/internal/measure/cacheprobe"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func classifyEnterprises(t testing.TB, w *world.World, limit int) []Verdict {
	t.Helper()
	pb := &cacheprobe.Prober{PR: w.PR}
	c := NewClassifier(pb, w.Cat.ECSDomains()[:10])
	var out []Verdict
	for _, asn := range w.Top.ASesOfType(topology.Enterprise) {
		for _, p := range w.Top.ASes[asn].Prefixes {
			v, err := c.Classify(w.Top, p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

func TestClassifierSeparatesBotsFromPeople(t *testing.T) {
	w := world.Build(world.Tiny(1))
	verdicts := classifyEnterprises(t, w, 0)
	ev := Evaluate(verdicts, w.Traffic.IsBotPrefix)
	if ev.Observed < 12 {
		t.Fatalf("only %d prefixes observed", ev.Observed)
	}
	if ev.Precision < 0.85 {
		t.Errorf("human precision %.2f, want >= 0.85", ev.Precision)
	}
	if ev.Recall < 0.6 {
		t.Errorf("human recall %.2f, want >= 0.6", ev.Recall)
	}
	if ev.BotRecall < 0.6 {
		t.Errorf("bot recall %.2f, want >= 0.6", ev.BotRecall)
	}
}

func TestGroundTruthHasBots(t *testing.T) {
	w := world.Build(world.Tiny(2))
	bots, total := 0, 0
	for _, asn := range w.Top.ASesOfType(topology.Enterprise) {
		for _, p := range w.Top.ASes[asn].Prefixes {
			total++
			if w.Traffic.IsBotPrefix(p) {
				bots++
			}
		}
	}
	if bots == 0 || bots == total {
		t.Fatalf("bot farms %d of %d implausible", bots, total)
	}
	// Bots never appear outside enterprise space.
	for _, asn := range w.Top.ASesOfType(topology.Eyeball)[:5] {
		for _, p := range w.Top.ASes[asn].Prefixes {
			if w.Traffic.IsBotPrefix(p) {
				t.Fatalf("eyeball prefix %v marked bot", p)
			}
		}
	}
}

func TestUnobservedPrefixNotClassified(t *testing.T) {
	w := world.Build(world.Tiny(3))
	pb := &cacheprobe.Prober{PR: w.PR}
	c := NewClassifier(pb, w.Cat.ECSDomains()[:3])
	// Infrastructure prefix: no users, no hits.
	hg := w.Top.ASesOfType(topology.Hypergiant)[0]
	v, err := c.Classify(w.Top, w.Top.ASes[hg].Prefixes[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.Observed || v.Human {
		t.Errorf("silent prefix classified: %+v", v)
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	ev := Evaluate(nil, func(topology.PrefixID) bool { return false })
	if ev.Observed != 0 || ev.Precision != 0 {
		t.Error("empty evaluation not zero")
	}
}
