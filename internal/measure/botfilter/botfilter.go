// Package botfilter addresses the §3.1.2 open challenge: "A key challenge
// is extending them to find Internet users (as opposed to bots and other
// non-human clients)". The discriminating signal is rhythm: human demand
// follows the local diurnal curve, automation runs around the clock.
// Per-prefix hourly cache-hit profiles over several days and domains —
// inverted into query-rate estimates — separate the two with public
// measurements only.
package botfilter

import (
	"itmap/internal/geo"
	"itmap/internal/measure/cacheprobe"
	"itmap/internal/simtime"
	"itmap/internal/topology"
)

// The quiet and busy local-time windows, read off the aggregate diurnal
// activity curve (users.DiurnalFactor peaks at 20:00 local and bottoms out
// around 08:00). The windows come from the curve the map itself recovers
// (E13), not from assumptions about sleep schedules.
const (
	troughStart, troughEnd = 6, 10
	peakStart, peakEnd     = 18, 22
)

// Verdict classifies one prefix.
type Verdict struct {
	Prefix topology.PrefixID
	// NightRatio is the estimated query rate in the local activity
	// trough relative to the local peak. Human prefixes sit well below
	// 1; automation sits near 1.
	NightRatio float64
	// Human is the classification: diurnal activity means people.
	Human bool
	// Observed is false when the prefix produced too little signal to
	// classify.
	Observed bool
}

// Classifier runs the campaigns and applies the rhythm threshold.
type Classifier struct {
	Prober *cacheprobe.Prober
	// Domains are the probed domains (popular, ECS-supporting). A small
	// population uses only some services, so probing several domains
	// keeps most prefixes observable; popularity diversity also ensures
	// every prefix has at least one domain in the informative
	// (non-saturated) occupancy regime.
	Domains []string
	// Days of probing; more days average out window noise.
	Days int
	// Interval between probes of the same prefix.
	Interval simtime.Time
	// RatioThreshold separates human (trough/peak rate ratio below)
	// from bot (above).
	RatioThreshold float64
	// MinPeakHits is the evidence floor: fewer peak-window hits than
	// this and the prefix stays unclassified.
	MinPeakHits float64
}

// NewClassifier returns a classifier with sensible defaults: three days of
// probing every five minutes across the domains.
func NewClassifier(pb *cacheprobe.Prober, domains []string) *Classifier {
	return &Classifier{
		Prober:         pb,
		Domains:        domains,
		Days:           3,
		Interval:       5 * simtime.Minute,
		RatioThreshold: 0.62,
		MinPeakHits:    8,
	}
}

// Classify measures and classifies one prefix. Per domain, hourly hit
// rates are inverted into query-rate estimates (the domain's TTL is public:
// it is in every DNS response); domains cached around the clock for this
// prefix are saturated, hence uninformative, and are skipped — busy
// prefixes draw their signal from less popular domains, small prefixes
// from the popular ones.
func (c *Classifier) Classify(top *topology.Topology, p topology.PrefixID) (Verdict, error) {
	// The prefix's timezone comes from public geolocation of its
	// address space.
	offset := 0.0
	if city, ok := top.PrefixCity[p]; ok {
		if country, err := geo.CountryByCode(city.Country); err == nil {
			offset = country.UTCOffsetHours
		}
	}
	var troughRate, peakRate, peakHits float64
	for _, domain := range c.Domains {
		ttl := 60
		if svc, ok := c.Prober.PR.Catalog().ByDomain(domain); ok {
			ttl = svc.TTLSeconds
		}
		merged := &cacheprobe.HourlyProfile{}
		for day := 0; day < max(c.Days, 1); day++ {
			hp, err := c.Prober.MeasureHourlyProfile(top, []topology.PrefixID{p},
				domain, simtime.Time(24*day), c.Interval)
			if err != nil {
				return Verdict{Prefix: p}, err
			}
			for h := 0; h < 24; h++ {
				merged.Hits[h] += hp.Hits[h]
				merged.Probes[h] += hp.Probes[h]
			}
		}
		th, tp := windowCounts(merged, offset, troughStart, troughEnd)
		ph, pp := windowCounts(merged, offset, peakStart, peakEnd)
		if pp == 0 || ph/pp > 0.9 {
			continue // silent or saturated: no signal either way
		}
		troughRate += cacheprobe.RateFromHitRate(th/maxf(tp, 1), int(tp), ttl)
		peakRate += cacheprobe.RateFromHitRate(ph/maxf(pp, 1), int(pp), ttl)
		peakHits += ph
	}
	v := Verdict{Prefix: p}
	if peakHits < c.MinPeakHits || peakRate <= 0 {
		return v, nil
	}
	v.Observed = true
	v.NightRatio = troughRate / peakRate
	v.Human = v.NightRatio < c.RatioThreshold
	return v, nil
}

// windowCounts sums hits and probes in the local-time window [fromH, toH).
func windowCounts(hp *cacheprobe.HourlyProfile, utcOffset float64, fromH, toH int) (hits, probes float64) {
	for lh := fromH; lh < toH; lh++ {
		utc := ((lh-int(utcOffset))%24 + 24) % 24
		hits += hp.Hits[utc]
		probes += float64(hp.Probes[utc])
	}
	return hits, probes
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Eval scores classifications against ground truth.
type Eval struct {
	// Precision: of prefixes called human, how many are.
	Precision float64
	// Recall: of human prefixes observed, how many were called human.
	Recall float64
	// BotRecall: of bot prefixes observed, how many were called bots.
	BotRecall float64
	Observed  int
}

// Evaluate compares verdicts to a ground-truth bot oracle.
func Evaluate(verdicts []Verdict, isBot func(topology.PrefixID) bool) Eval {
	var tpHuman, fpHuman, fnHuman, tpBot, fnBot float64
	observed := 0
	for _, v := range verdicts {
		if !v.Observed {
			continue
		}
		observed++
		bot := isBot(v.Prefix)
		switch {
		case v.Human && !bot:
			tpHuman++
		case v.Human && bot:
			fpHuman++
			fnBot++
		case !v.Human && !bot:
			fnHuman++
		case !v.Human && bot:
			tpBot++
		}
	}
	ev := Eval{Observed: observed}
	if tpHuman+fpHuman > 0 {
		ev.Precision = tpHuman / (tpHuman + fpHuman)
	}
	if tpHuman+fnHuman > 0 {
		ev.Recall = tpHuman / (tpHuman + fnHuman)
	}
	if tpBot+fnBot > 0 {
		ev.BotRecall = tpBot / (tpBot + fnBot)
	}
	return ev
}
