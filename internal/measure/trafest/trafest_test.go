package trafest

import (
	"testing"

	"itmap/internal/measure/tracer"
	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func setup(t testing.TB, seed int64) (*world.World, *Estimate) {
	t.Helper()
	w := world.Build(world.Tiny(seed))
	vps := tracer.AtlasVPs(w.Top, randx.New(seed))
	var targets []topology.ASN
	targets = append(targets, w.Top.ASesOfType(topology.Hypergiant)...)
	targets = append(targets, w.Top.ASesOfType(topology.Cloud)...)
	targets = append(targets, w.Top.ASesOfType(topology.Tier1)...)
	return w, EstimateLinkActivity(w.Paths, vps, targets)
}

func TestCrossingsOnRealLinks(t *testing.T) {
	w, est := setup(t, 1)
	if est.Paths == 0 || len(est.Crossings) == 0 {
		t.Fatal("no paths measured")
	}
	for lk, n := range est.Crossings {
		if n <= 0 {
			t.Fatalf("non-positive crossing count on %v", lk)
		}
		if !w.Top.HasLink(lk.Lo, lk.Hi) {
			t.Fatalf("crossing recorded on nonexistent link %v", lk)
		}
	}
}

func TestBaselineMissesMostTraffic(t *testing.T) {
	w, est := setup(t, 2)
	mx := w.Traffic.BuildMatrix()
	ev := Evaluate(w.Top, mx, est)

	// The paper's critique, quantified: a large share of traffic either
	// crosses links the traceroutes never see, or never crosses a link
	// at all (off-net caches).
	if ev.OffNetShare < 0.2 {
		t.Errorf("off-net share %.2f; expected substantial in-network serving", ev.OffNetShare)
	}
	if ev.TrafficOnUnseenLinks < 0.1 {
		t.Errorf("traffic on unseen links %.2f; baseline should have blind spots", ev.TrafficOnUnseenLinks)
	}
	if ev.PNITrafficUnseen < 0.1 {
		t.Errorf("PNI traffic unseen %.2f; private interconnects should be mostly invisible", ev.PNITrafficUnseen)
	}
	// Where it does see links, the signal is at least weakly informative
	// (the baseline is not a strawman).
	if ev.RankCorrObservedLinks < 0 {
		t.Errorf("crossing counts anti-correlate with load: %.2f", ev.RankCorrObservedLinks)
	}
}

func TestMoreVantagePointsSeeMore(t *testing.T) {
	w := world.Build(world.Tiny(3))
	targets := w.Top.ASesOfType(topology.Hypergiant)
	few := EstimateLinkActivity(w.Paths, tracer.AtlasVPs(w.Top, randx.New(1))[:2], targets)
	many := EstimateLinkActivity(w.Paths, tracer.AtlasVPs(w.Top, randx.New(1)), targets)
	if len(many.Crossings) < len(few.Crossings) {
		t.Errorf("more VPs observed fewer links: %d vs %d", len(many.Crossings), len(few.Crossings))
	}
}

func TestEvaluateEmptyEstimate(t *testing.T) {
	w := world.Build(world.Tiny(4))
	mx := w.Traffic.BuildMatrix()
	ev := Evaluate(w.Top, mx, &Estimate{Crossings: map[topology.LinkKey]float64{}})
	if ev.TrafficOnUnseenLinks != 1 {
		t.Errorf("empty estimate should miss all link traffic, got %.2f", ev.TrafficOnUnseenLinks)
	}
	if ev.RankCorrObservedLinks != 0 {
		t.Errorf("no observed links should give zero correlation")
	}
}
