// Package trafest implements the baseline the paper contrasts itself with:
// Sanchez et al.'s "inter-domain traffic estimation for the outsider" [53],
// which estimates relative link activity from how often traceroutes cross
// each inter-domain link. The paper's critique — "the approach does not
// apply to the vast majority of traffic on today's Internet that crosses
// private interconnects or flows from caches" — becomes measurable here:
// the evaluation reports how much ground-truth traffic flows over links the
// method never sees, and how much never crosses an inter-AS link at all
// (off-net serving).
package trafest

import (
	"itmap/internal/bgp"
	"itmap/internal/measure/tracer"
	"itmap/internal/order"
	"itmap/internal/stats"
	"itmap/internal/topology"
	"itmap/internal/traffic"
)

// Estimate is a per-link relative-activity estimate from traceroute
// crossings.
type Estimate struct {
	// Crossings counts how many measured paths crossed each link.
	Crossings map[topology.LinkKey]float64
	// Paths is the number of traceroutes used.
	Paths int
}

// EstimateLinkActivity runs traceroutes from every vantage point to every
// target and counts link crossings — the baseline's core signal.
func EstimateLinkActivity(ap *bgp.AllPaths, vps []tracer.VantagePoint, targets []topology.ASN) *Estimate {
	e := &Estimate{Crossings: map[topology.LinkKey]float64{}}
	for _, vp := range vps {
		for _, dst := range targets {
			path := tracer.Traceroute(ap, vp.AS, dst)
			if path == nil {
				continue
			}
			e.Paths++
			for i := 0; i+1 < len(path); i++ {
				e.Crossings[topology.MakeLinkKey(path[i], path[i+1])]++
			}
		}
	}
	return e
}

// Eval scores the baseline against ground truth.
type Eval struct {
	// RankCorrObservedLinks is the Spearman correlation between crossing
	// counts and true loads, over links the method observed at all (its
	// best case).
	RankCorrObservedLinks float64
	// TrafficOnUnseenLinks is the share of link-crossing traffic on
	// links with zero traceroute coverage.
	TrafficOnUnseenLinks float64
	// PNITrafficUnseen is the share of private-peering traffic the
	// method never observes.
	PNITrafficUnseen float64
	// OffNetShare is the share of total bytes served inside the client's
	// own network — traffic that crosses no inter-AS link and is
	// invisible to any path-crossing method by construction.
	OffNetShare float64
}

// Evaluate compares crossing counts with the ground-truth matrix.
func Evaluate(top *topology.Topology, mx *traffic.Matrix, est *Estimate) Eval {
	var ev Eval
	var xs, ys []float64
	var seenLoad, unseenLoad, pniLoad, pniUnseen float64
	for _, lk := range order.KeysFunc(mx.LinkLoad, topology.LinkKey.Compare) {
		load := mx.LinkLoad[lk]
		cross := est.Crossings[lk]
		if cross > 0 {
			xs = append(xs, cross)
			ys = append(ys, load)
			seenLoad += load
		} else {
			unseenLoad += load
		}
		if kindOf(top, lk) == topology.PrivatePeering {
			pniLoad += load
			if cross == 0 {
				pniUnseen += load
			}
		}
	}
	ev.RankCorrObservedLinks = stats.Spearman(xs, ys)
	if total := seenLoad + unseenLoad; total > 0 {
		ev.TrafficOnUnseenLinks = unseenLoad / total
	}
	if pniLoad > 0 {
		ev.PNITrafficUnseen = pniUnseen / pniLoad
	}
	// Off-net share: flows with zero hops never touch a link.
	var offNet float64
	for _, f := range mx.Flows {
		if f.Hops == 0 {
			offNet += f.Bytes
		}
	}
	if mx.TotalBytes > 0 {
		ev.OffNetShare = offNet / mx.TotalBytes
	}
	return ev
}

func kindOf(top *topology.Topology, lk topology.LinkKey) topology.LinkKind {
	a := top.ASes[lk.Lo]
	if a == nil {
		return topology.TransitLink
	}
	for _, nb := range a.Neighbors {
		if nb.ASN == lk.Hi {
			return nb.Kind
		}
	}
	return topology.TransitLink
}
