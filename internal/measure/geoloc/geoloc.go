// Package geoloc implements §3.2.3 approach 3: locating serving
// infrastructure at fine granularity with constraint-based localization.
// Each vantage point's minimum RTT to a target bounds the target's distance
// (speed-of-light constraint); the estimate is the constraint-weighted
// position. In-facility vantage points (servers inside colocation sites)
// tighten the constraints dramatically — the paper's suggested refinement.
package geoloc

import (
	"math"
	"sort"

	"itmap/internal/geo"
	"itmap/internal/latency"
	"itmap/internal/topology"
)

// VantagePoint is a host with a known location that can ping targets.
type VantagePoint struct {
	Prefix topology.PrefixID
	Coord  geo.Coord
	Name   string
}

// Constraint is one vantage point's distance bound on the target.
type Constraint struct {
	VP VantagePoint
	// RadiusKm is the maximum distance the target can be from the VP
	// given the measured minimum RTT.
	RadiusKm float64
	// RTTms is the measured minimum RTT.
	RTTms float64
}

// Estimate is a geolocation result.
type Estimate struct {
	Coord geo.Coord
	// ConfidenceKm is the radius of the tightest constraint — a bound
	// on how wrong the estimate can be.
	ConfidenceKm float64
	Constraints  []Constraint
}

// Localize estimates a target prefix's location from RTTs measured at the
// given vantage points, with probesPerVP pings each.
func Localize(m *latency.Model, vps []VantagePoint, target topology.PrefixID, probesPerVP int) (Estimate, bool) {
	var cons []Constraint
	for _, vp := range vps {
		rtt, ok := m.MinRTTms(vp.Prefix, target, probesPerVP)
		if !ok {
			continue
		}
		cons = append(cons, Constraint{
			VP: vp,
			// The whole RTT could be propagation: hard upper bound.
			RadiusKm: rtt * latency.KmPerMsRTT,
			RTTms:    rtt,
		})
	}
	if len(cons) == 0 {
		return Estimate{}, false
	}
	sort.Slice(cons, func(i, j int) bool { return cons[i].RadiusKm < cons[j].RadiusKm })

	// Weighted centroid: tighter constraints dominate. A VP with a tiny
	// radius pins the target; far VPs contribute little.
	var sumW, sumLat, sumLon float64
	for _, c := range cons {
		w := 1 / (c.RadiusKm*c.RadiusKm + 100)
		sumW += w
		sumLat += w * c.VP.Coord.Lat
		sumLon += w * c.VP.Coord.Lon
	}
	est := Estimate{
		Coord: geo.Coord{
			Lat: sumLat / sumW,
			Lon: sumLon / sumW,
		},
		ConfidenceKm: cons[0].RadiusKm,
		Constraints:  cons,
	}
	// A weighted centroid in lat/lon space is a poor spherical estimator
	// (and can violate tight constraints). Serving infrastructure lives
	// in datacenter cities, so refine by candidate search: pick the known
	// city most consistent with the constraints (zero violation — the
	// true city always has it — then the tightest fit).
	if best, ok := bestCandidateCity(cons); ok {
		est.Coord = best
	}
	return est, true
}

// candidateCities lists the world's plausible server locations: country
// capitals (which include the region hubs).
func candidateCities() []geo.Coord {
	var out []geo.Coord
	for _, c := range geo.Countries() {
		out = append(out, c.Capital.Coord)
	}
	return out
}

// bestCandidateCity returns the candidate with the least total constraint
// violation, breaking ties toward the most central fit.
func bestCandidateCity(cons []Constraint) (geo.Coord, bool) {
	cands := candidateCities()
	if len(cands) == 0 {
		return geo.Coord{}, false
	}
	bestIdx := -1
	bestViolation, bestFit := math.Inf(1), math.Inf(1)
	for i, cand := range cands {
		violation, fit := 0.0, 0.0
		for _, c := range cons {
			d := geo.DistanceKm(cand, c.VP.Coord)
			if d > c.RadiusKm {
				violation += d - c.RadiusKm
			}
			fit += d / (c.RadiusKm + 1)
		}
		if violation < bestViolation-1e-9 ||
			(math.Abs(violation-bestViolation) <= 1e-9 && fit < bestFit) {
			bestIdx, bestViolation, bestFit = i, violation, fit
		}
	}
	return cands[bestIdx], true
}

// ErrorKm returns the distance between the estimate and the true location.
func (e Estimate) ErrorKm(truth geo.Coord) float64 {
	return geo.DistanceKm(e.Coord, truth)
}

// Violated reports whether the estimate sits outside any constraint —
// a consistency check (should not happen for correct models).
func (e Estimate) Violated() bool {
	for _, c := range e.Constraints {
		if geo.DistanceKm(e.Coord, c.VP.Coord) > c.RadiusKm*1.001 {
			return true
		}
	}
	return false
}

// AtlasVPSet builds a vantage set from academic networks (their campus
// locations are public).
func AtlasVPSet(top *topology.Topology) []VantagePoint {
	var out []VantagePoint
	for _, asn := range top.ASesOfType(topology.Academic) {
		a := top.ASes[asn]
		if len(a.Prefixes) == 0 {
			continue
		}
		p := a.Prefixes[0]
		out = append(out, VantagePoint{
			Prefix: p,
			Coord:  top.PrefixCity[p].Coord,
			Name:   a.Name,
		})
	}
	return out
}

// FacilityVPSet builds the paper's refinement: vantage points inside
// colocation facilities ("constraint-based localization from in-facility
// vantage points"). Hosts are the serving prefixes of owners with known
// (facility) locations — here the giants' own on-net sites whose facility
// coordinates are public.
func FacilityVPSet(top *topology.Topology, sitePrefixes map[topology.PrefixID]geo.City) []VantagePoint {
	var ps []topology.PrefixID
	for p := range sitePrefixes {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var out []VantagePoint
	for _, p := range ps {
		out = append(out, VantagePoint{Prefix: p, Coord: sitePrefixes[p].Coord, Name: sitePrefixes[p].Name})
	}
	return out
}

// Summary aggregates localization errors.
type Summary struct {
	Targets  int
	MedianKm float64
	P90Km    float64
}

// Summarize computes error quantiles over a set of results.
func Summarize(errorsKm []float64) Summary {
	s := Summary{Targets: len(errorsKm)}
	if len(errorsKm) == 0 {
		return s
	}
	sorted := append([]float64(nil), errorsKm...)
	sort.Float64s(sorted)
	s.MedianKm = sorted[len(sorted)/2]
	s.P90Km = sorted[int(math.Min(float64(len(sorted)-1), 0.9*float64(len(sorted))))]
	return s
}
