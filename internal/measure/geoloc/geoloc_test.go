package geoloc

import (
	"testing"

	"itmap/internal/geo"
	"itmap/internal/latency"
	"itmap/internal/topology"
	"itmap/internal/world"
)

func setup(t testing.TB, seed int64) (*world.World, *latency.Model) {
	t.Helper()
	w := world.Build(world.Small(seed))
	return w, latency.New(w.Top, w.Paths, seed)
}

func serverTargets(w *world.World, owner topology.ASN) map[topology.PrefixID]geo.City {
	out := map[topology.PrefixID]geo.City{}
	for _, s := range w.Cat.Deployments[owner].Sites {
		out[s.Prefix] = s.City
	}
	return out
}

func TestLocalizeServers(t *testing.T) {
	w, m := setup(t, 1)
	vps := AtlasVPSet(w.Top)
	if len(vps) < 5 {
		t.Fatalf("only %d vantage points", len(vps))
	}
	owner := w.Cat.ReferenceCDN
	targets := serverTargets(w, owner)
	var errs []float64
	for p, city := range targets {
		est, ok := Localize(m, vps, p, 5)
		if !ok {
			continue
		}
		if est.Violated() {
			t.Fatalf("estimate for %v violates its own constraints", p)
		}
		errs = append(errs, est.ErrorKm(city.Coord))
	}
	sum := Summarize(errs)
	if sum.Targets < 10 {
		t.Fatalf("only %d targets localized", sum.Targets)
	}
	// Atlas-scale constraint geolocation should get the continent right
	// and usually much better.
	if sum.MedianKm > 2500 {
		t.Errorf("median error %.0f km; continent-level accuracy expected", sum.MedianKm)
	}
}

func TestFacilityVPsImproveAccuracy(t *testing.T) {
	w, m := setup(t, 2)
	owner := w.Cat.ReferenceCDN
	targets := serverTargets(w, owner)

	atlas := AtlasVPSet(w.Top)
	// In-facility VPs: another giant's on-net sites (known facility
	// coordinates), excluding the targets themselves.
	var other topology.ASN
	for _, hg := range w.Top.ASesOfType(topology.Hypergiant) {
		if hg != owner {
			other = hg
			break
		}
	}
	facTargets := map[topology.PrefixID]geo.City{}
	for _, s := range w.Cat.Deployments[other].OnNetSites() {
		facTargets[s.Prefix] = s.City
	}
	facility := FacilityVPSet(w.Top, facTargets)
	if len(facility) == 0 {
		t.Skip("no facility VPs")
	}

	var atlasErrs, facErrs []float64
	for p, city := range targets {
		if estA, ok := Localize(m, atlas, p, 5); ok {
			atlasErrs = append(atlasErrs, estA.ErrorKm(city.Coord))
		}
		if estF, ok := Localize(m, append(append([]VantagePoint{}, atlas...), facility...), p, 5); ok {
			facErrs = append(facErrs, estF.ErrorKm(city.Coord))
		}
	}
	a, f := Summarize(atlasErrs), Summarize(facErrs)
	if f.MedianKm > a.MedianKm {
		t.Errorf("facility VPs worsened accuracy: %.0f km vs %.0f km", f.MedianKm, a.MedianKm)
	}
}

func TestConstraintsSortedAndBounding(t *testing.T) {
	w, m := setup(t, 3)
	vps := AtlasVPSet(w.Top)
	owner := w.Cat.ReferenceCDN
	for p, city := range serverTargets(w, owner) {
		est, ok := Localize(m, vps, p, 3)
		if !ok {
			continue
		}
		for i := 1; i < len(est.Constraints); i++ {
			if est.Constraints[i].RadiusKm < est.Constraints[i-1].RadiusKm {
				t.Fatal("constraints not sorted by tightness")
			}
		}
		// The true location satisfies every constraint.
		for _, c := range est.Constraints {
			if d := geoDistKm(c.VP.Coord, city.Coord); d > c.RadiusKm*1.001 {
				t.Fatalf("true location violates constraint: %.0f km > %.0f km", d, c.RadiusKm)
			}
		}
		break
	}
}

func geoDistKm(a, b geo.Coord) float64 { return geo.DistanceKm(a, b) }

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.Targets != 0 || s.MedianKm != 0 {
		t.Error("empty summary wrong")
	}
	s := Summarize([]float64{5})
	if s.MedianKm != 5 || s.P90Km != 5 {
		t.Errorf("single-sample summary %+v", s)
	}
}

func TestLocalizeNoVPs(t *testing.T) {
	w, m := setup(t, 4)
	p := w.Top.AllPrefixes()[0]
	if _, ok := Localize(m, nil, p, 3); ok {
		t.Error("localized with no vantage points")
	}
}
