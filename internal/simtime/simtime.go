// Package simtime provides the simulator's clock. All simulated activity —
// user demand, DNS cache expiry, IP-ID counters, measurement campaigns —
// is parameterized by a simulated time; nothing reads the wall clock, so
// runs are reproducible and fast.
package simtime

import "math"

// Time is simulated time in hours since the simulation epoch (UTC).
type Time float64

// Convenient durations, in hours.
const (
	Minute Time = 1.0 / 60
	Hour   Time = 1
	Day    Time = 24
	Week   Time = 168
)

// UTCHour returns the hour-of-day in [0, 24).
func (t Time) UTCHour() float64 {
	h := math.Mod(float64(t), 24)
	if h < 0 {
		h += 24
	}
	return h
}

// DayIndex returns the whole days elapsed since the epoch.
func (t Time) DayIndex() int { return int(math.Floor(float64(t) / 24)) }

// Add returns t shifted by d.
func (t Time) Add(d Time) Time { return t + d }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// Seconds converts a duration expressed in seconds to simtime.
func Seconds(s float64) Time { return Time(s / 3600) }

// Range iterates from start (inclusive) to end (exclusive) in steps,
// calling f at each tick.
func Range(start, end, step Time, f func(Time)) {
	for t := start; t < end; t += step {
		f(t)
	}
}
