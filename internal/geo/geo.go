// Package geo models the simulator's geography: countries with
// Internet-population weights, cities with coordinates, and great-circle
// distance. The country table is a stylized snapshot of real Internet
// demographics (relative populations matter, absolute numbers are scaled);
// the ITM's headline results are shares and ranks, which survive scaling.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Coord is a geographic coordinate in decimal degrees.
type Coord struct {
	Lat float64
	Lon float64
}

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometres, using a mean Earth radius of 6371 km.
func DistanceKm(a, b Coord) float64 {
	const earthRadiusKm = 6371.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Region is a coarse continental region, used to place public-resolver PoPs
// and to group countries in reports.
type Region string

// The simulator's regions.
const (
	NorthAmerica Region = "north-america"
	SouthAmerica Region = "south-america"
	Europe       Region = "europe"
	Africa       Region = "africa"
	MiddleEast   Region = "middle-east"
	SouthAsia    Region = "south-asia"
	EastAsia     Region = "east-asia"
	Oceania      Region = "oceania"
)

// Regions lists all regions in a stable order.
func Regions() []Region {
	return []Region{
		NorthAmerica, SouthAmerica, Europe, Africa,
		MiddleEast, SouthAsia, EastAsia, Oceania,
	}
}

// Country describes one country in the simulated world.
type Country struct {
	// Code is the ISO-3166-ish two letter code.
	Code string
	// Name is the human-readable name.
	Name string
	// Region is the continental region.
	Region Region
	// InternetUsersM is the (stylized) number of Internet users in
	// millions; it drives how many eyeball networks and users the world
	// generator places in the country.
	InternetUsersM float64
	// Capital is the principal city used when a finer city is not needed.
	Capital City
	// UTCOffsetHours approximates the country's timezone; it drives the
	// diurnal activity phase of users in the country.
	UTCOffsetHours float64
}

// City is a named location.
type City struct {
	Name    string
	Country string // country code
	Coord   Coord
}

// World geography: a stylized country table. Internet-user counts are in
// millions and approximate the early-2020s Internet. Only relative sizes
// matter to the experiments.
var countries = []Country{
	{"US", "United States", NorthAmerica, 300, City{"New York", "US", Coord{40.7, -74.0}}, -5},
	{"CA", "Canada", NorthAmerica, 35, City{"Toronto", "CA", Coord{43.7, -79.4}}, -5},
	{"MX", "Mexico", NorthAmerica, 95, City{"Mexico City", "MX", Coord{19.4, -99.1}}, -6},
	{"BR", "Brazil", SouthAmerica, 160, City{"Sao Paulo", "BR", Coord{-23.6, -46.6}}, -3},
	{"AR", "Argentina", SouthAmerica, 38, City{"Buenos Aires", "AR", Coord{-34.6, -58.4}}, -3},
	{"CO", "Colombia", SouthAmerica, 35, City{"Bogota", "CO", Coord{4.7, -74.1}}, -5},
	{"CL", "Chile", SouthAmerica, 16, City{"Santiago", "CL", Coord{-33.4, -70.7}}, -4},
	{"GB", "United Kingdom", Europe, 65, City{"London", "GB", Coord{51.5, -0.1}}, 0},
	{"DE", "Germany", Europe, 78, City{"Frankfurt", "DE", Coord{50.1, 8.7}}, 1},
	{"FR", "France", Europe, 60, City{"Paris", "FR", Coord{48.9, 2.4}}, 1},
	{"IT", "Italy", Europe, 51, City{"Milan", "IT", Coord{45.5, 9.2}}, 1},
	{"ES", "Spain", Europe, 43, City{"Madrid", "ES", Coord{40.4, -3.7}}, 1},
	{"NL", "Netherlands", Europe, 17, City{"Amsterdam", "NL", Coord{52.4, 4.9}}, 1},
	{"PL", "Poland", Europe, 34, City{"Warsaw", "PL", Coord{52.2, 21.0}}, 1},
	{"SE", "Sweden", Europe, 10, City{"Stockholm", "SE", Coord{59.3, 18.1}}, 1},
	{"RU", "Russia", Europe, 124, City{"Moscow", "RU", Coord{55.8, 37.6}}, 3},
	{"UA", "Ukraine", Europe, 30, City{"Kyiv", "UA", Coord{50.5, 30.5}}, 2},
	{"TR", "Turkey", MiddleEast, 70, City{"Istanbul", "TR", Coord{41.0, 29.0}}, 3},
	{"SA", "Saudi Arabia", MiddleEast, 33, City{"Riyadh", "SA", Coord{24.7, 46.7}}, 3},
	{"AE", "UAE", MiddleEast, 9, City{"Dubai", "AE", Coord{25.2, 55.3}}, 4},
	{"IR", "Iran", MiddleEast, 72, City{"Tehran", "IR", Coord{35.7, 51.4}}, 3.5},
	{"EG", "Egypt", Africa, 72, City{"Cairo", "EG", Coord{30.0, 31.2}}, 2},
	{"NG", "Nigeria", Africa, 108, City{"Lagos", "NG", Coord{6.5, 3.4}}, 1},
	{"ZA", "South Africa", Africa, 41, City{"Johannesburg", "ZA", Coord{-26.2, 28.0}}, 2},
	{"KE", "Kenya", Africa, 23, City{"Nairobi", "KE", Coord{-1.3, 36.8}}, 3},
	{"MA", "Morocco", Africa, 31, City{"Casablanca", "MA", Coord{33.6, -7.6}}, 1},
	{"IN", "India", SouthAsia, 750, City{"Mumbai", "IN", Coord{19.1, 72.9}}, 5.5},
	{"PK", "Pakistan", SouthAsia, 87, City{"Karachi", "PK", Coord{24.9, 67.1}}, 5},
	{"BD", "Bangladesh", SouthAsia, 66, City{"Dhaka", "BD", Coord{23.8, 90.4}}, 6},
	{"CN", "China", EastAsia, 1000, City{"Shanghai", "CN", Coord{31.2, 121.5}}, 8},
	{"JP", "Japan", EastAsia, 117, City{"Tokyo", "JP", Coord{35.7, 139.7}}, 9},
	{"KR", "South Korea", EastAsia, 50, City{"Seoul", "KR", Coord{37.6, 127.0}}, 9},
	{"ID", "Indonesia", EastAsia, 200, City{"Jakarta", "ID", Coord{-6.2, 106.8}}, 7},
	{"PH", "Philippines", EastAsia, 76, City{"Manila", "PH", Coord{14.6, 121.0}}, 8},
	{"VN", "Vietnam", EastAsia, 72, City{"Hanoi", "VN", Coord{21.0, 105.9}}, 7},
	{"TH", "Thailand", EastAsia, 54, City{"Bangkok", "TH", Coord{13.8, 100.5}}, 7},
	{"TW", "Taiwan", EastAsia, 21, City{"Taipei", "TW", Coord{25.0, 121.6}}, 8},
	{"AU", "Australia", Oceania, 23, City{"Sydney", "AU", Coord{-33.9, 151.2}}, 10},
	{"NZ", "New Zealand", Oceania, 4.5, City{"Auckland", "NZ", Coord{-36.8, 174.8}}, 12},
}

// Countries returns the full country table (a copy), sorted by descending
// Internet-user count.
func Countries() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	sort.Slice(out, func(i, j int) bool {
		if out[i].InternetUsersM != out[j].InternetUsersM {
			return out[i].InternetUsersM > out[j].InternetUsersM
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// CountryByCode returns the country with the given code.
func CountryByCode(code string) (Country, error) {
	for _, c := range countries {
		if c.Code == code {
			return c, nil
		}
	}
	return Country{}, fmt.Errorf("geo: unknown country code %q", code)
}

// TotalInternetUsersM returns the sum of Internet users (millions) across
// all countries in the table.
func TotalInternetUsersM() float64 {
	total := 0.0
	for _, c := range countries {
		total += c.InternetUsersM
	}
	return total
}

// RegionHub returns a representative city for a region: the capital of the
// region's largest country. Public-resolver PoPs and tier-1 backbones sit
// at region hubs.
func RegionHub(r Region) City {
	best := Country{}
	for _, c := range countries {
		if c.Region == r && c.InternetUsersM > best.InternetUsersM {
			best = c
		}
	}
	return best.Capital
}

// LocalHourAt returns the local hour-of-day (0..24, fractional) in a country
// at the given simulated UTC hour.
func LocalHourAt(c Country, utcHour float64) float64 {
	h := math.Mod(utcHour+c.UTCOffsetHours, 24)
	if h < 0 {
		h += 24
	}
	return h
}
