package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	ny := Coord{40.7, -74.0}
	london := Coord{51.5, -0.1}
	tokyo := Coord{35.7, 139.7}
	cases := []struct {
		a, b     Coord
		wantKm   float64
		tolerate float64
	}{
		{ny, london, 5570, 100},
		{london, tokyo, 9560, 150},
		{ny, ny, 0, 0.001},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.wantKm) > c.tolerate {
			t.Errorf("distance = %.0f km, want %.0f±%.0f", got, c.wantKm, c.tolerate)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 uint16) bool {
		a := Coord{float64(lat1%180) - 90, float64(lon1%360) - 180}
		b := Coord{float64(lat2%180) - 90, float64(lon2%360) - 180}
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		// Symmetric, non-negative, bounded by half circumference.
		return dab >= 0 && math.Abs(dab-dba) < 1e-6 && dab < 20038
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountriesSortedAndComplete(t *testing.T) {
	cs := Countries()
	if len(cs) < 30 {
		t.Fatalf("only %d countries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].InternetUsersM > cs[i-1].InternetUsersM {
			t.Fatal("countries not sorted by users desc")
		}
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.Code] {
			t.Fatalf("duplicate country %s", c.Code)
		}
		seen[c.Code] = true
		if c.InternetUsersM <= 0 || c.Capital.Name == "" {
			t.Fatalf("country %s incomplete", c.Code)
		}
		if c.Capital.Coord.Lat < -90 || c.Capital.Coord.Lat > 90 {
			t.Fatalf("country %s latitude out of range", c.Code)
		}
	}
	if !seen["FR"] || !seen["US"] || !seen["IN"] {
		t.Error("expected FR, US, IN in table")
	}
}

func TestCountryByCode(t *testing.T) {
	fr, err := CountryByCode("FR")
	if err != nil || fr.Name != "France" {
		t.Fatalf("FR lookup: %v %v", fr, err)
	}
	if _, err := CountryByCode("XX"); err == nil {
		t.Error("expected error for unknown code")
	}
}

func TestRegionHub(t *testing.T) {
	for _, r := range Regions() {
		hub := RegionHub(r)
		if hub.Name == "" {
			t.Errorf("region %s has no hub", r)
		}
	}
	// Largest EastAsia country is China.
	if hub := RegionHub(EastAsia); hub.Country != "CN" {
		t.Errorf("EastAsia hub in %s, want CN", hub.Country)
	}
}

func TestLocalHourAt(t *testing.T) {
	jp, _ := CountryByCode("JP") // UTC+9
	if h := LocalHourAt(jp, 0); math.Abs(h-9) > 1e-9 {
		t.Errorf("JP local hour at UTC 0 = %f, want 9", h)
	}
	us, _ := CountryByCode("US") // UTC-5
	if h := LocalHourAt(us, 3); math.Abs(h-22) > 1e-9 {
		t.Errorf("US local hour at UTC 3 = %f, want 22", h)
	}
	// Always in [0, 24).
	for utc := -30.0; utc < 60; utc += 1.3 {
		h := LocalHourAt(jp, utc)
		if h < 0 || h >= 24 {
			t.Fatalf("local hour %f out of range", h)
		}
	}
}

func TestTotalInternetUsers(t *testing.T) {
	total := TotalInternetUsersM()
	if total < 3000 || total > 6000 {
		t.Errorf("world Internet users %.0fM implausible", total)
	}
}
