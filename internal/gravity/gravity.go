// Package gravity implements traffic-matrix completion from marginals (the
// Gürsun & Crovella line of work the paper's related-work cites [30, 31]):
// given per-client activity totals and per-service-owner totals — exactly
// the marginals an Internet traffic map estimates — the gravity model
// predicts every pairwise flow as flow(c, o) ∝ activity(c) × volume(o).
// Evaluated against ground truth, it shows how far marginals alone carry a
// map, and where redirection structure (off-nets, anycast, per-prefix
// affinities) makes real matrices deviate.
package gravity

import (
	"math"
	"sort"

	"itmap/internal/order"
	"itmap/internal/stats"
	"itmap/internal/topology"
)

// Pair keys one (client AS, owner AS) matrix cell.
type Pair struct {
	Client topology.ASN
	Owner  topology.ASN
}

// Compare orders pairs by client then owner, for deterministic iteration.
func (p Pair) Compare(o Pair) int {
	if p.Client != o.Client {
		return int(p.Client) - int(o.Client)
	}
	return int(p.Owner) - int(o.Owner)
}

// Completion is a gravity-model estimate of a traffic matrix.
type Completion struct {
	// Est maps each pair to estimated daily bytes.
	Est map[Pair]float64
	// Total is the matrix grand total implied by the marginals.
	Total float64
}

// Complete builds the gravity estimate from row (client) and column
// (owner) marginals. Marginals need not be consistent; the row total is
// treated as the grand total.
func Complete(clientTotals map[topology.ASN]float64, ownerTotals map[topology.ASN]float64) *Completion {
	c := &Completion{Est: map[Pair]float64{}}
	rowSum := order.SumValues(clientTotals)
	colSum := order.SumValues(ownerTotals)
	if rowSum == 0 || colSum == 0 {
		return c
	}
	c.Total = rowSum
	for client, rv := range clientTotals {
		for owner, cv := range ownerTotals {
			est := rv * cv / colSum
			if est > 0 {
				c.Est[Pair{client, owner}] = est
			}
		}
	}
	return c
}

// Eval scores a completion against the true matrix.
type Eval struct {
	// RankCorr is the Spearman correlation across cells present in
	// either matrix.
	RankCorr float64
	// WeightedMAPE is the truth-weighted mean absolute percentage error
	// over true cells.
	WeightedMAPE float64
	// MedianAPE is the unweighted median absolute percentage error.
	MedianAPE float64
	// Cells is the number of true cells evaluated.
	Cells int
}

// Evaluate compares the completion with ground-truth pair volumes.
func Evaluate(c *Completion, truth map[Pair]float64) Eval {
	var ev Eval
	var xs, ys []float64
	var apes []float64
	var wape, wsum float64
	for _, pair := range order.KeysFunc(truth, Pair.Compare) {
		tv := truth[pair]
		if tv <= 0 {
			continue
		}
		ev.Cells++
		est := c.Est[pair]
		xs = append(xs, est)
		ys = append(ys, tv)
		ape := math.Abs(est-tv) / tv
		apes = append(apes, ape)
		wape += ape * tv
		wsum += tv
	}
	ev.RankCorr = stats.Spearman(xs, ys)
	if wsum > 0 {
		ev.WeightedMAPE = wape / wsum
	}
	if len(apes) > 0 {
		sort.Float64s(apes)
		ev.MedianAPE = apes[len(apes)/2]
	}
	return ev
}
