package gravity

import (
	"math"
	"testing"

	"itmap/internal/topology"
	"itmap/internal/world"
)

func truthPairs(w *world.World) (map[Pair]float64, map[topology.ASN]float64, map[topology.ASN]float64) {
	mx := w.Traffic.BuildMatrix()
	truth := map[Pair]float64{}
	rows := map[topology.ASN]float64{}
	cols := map[topology.ASN]float64{}
	for _, f := range mx.Flows {
		owner := w.Cat.Services[f.Svc].Owner
		truth[Pair{f.ClientAS, owner}] += f.Bytes
		rows[f.ClientAS] += f.Bytes
		cols[owner] += f.Bytes
	}
	return truth, rows, cols
}

func TestGravityRecoversProductStructure(t *testing.T) {
	w := world.Build(world.Tiny(1))
	truth, rows, cols := truthPairs(w)
	c := Complete(rows, cols)
	ev := Evaluate(c, truth)
	if ev.Cells < 100 {
		t.Fatalf("only %d cells", ev.Cells)
	}
	// Demand is near product-form, so gravity from true marginals must
	// reconstruct the matrix well — the premise of completion work.
	if ev.RankCorr < 0.8 {
		t.Errorf("rank corr %.2f, want > 0.8", ev.RankCorr)
	}
	if ev.WeightedMAPE > 0.6 {
		t.Errorf("weighted MAPE %.2f, want < 0.6", ev.WeightedMAPE)
	}
}

func TestMarginalsPreserved(t *testing.T) {
	w := world.Build(world.Tiny(2))
	_, rows, cols := truthPairs(w)
	c := Complete(rows, cols)
	// Row sums of the estimate equal the row marginals.
	estRows := map[topology.ASN]float64{}
	for pair, v := range c.Est {
		estRows[pair.Client] += v
	}
	for client, want := range rows {
		if got := estRows[client]; math.Abs(got-want) > 1e-6*want {
			t.Fatalf("row %d: %.0f vs %.0f", client, got, want)
		}
	}
}

func TestEmptyMarginals(t *testing.T) {
	c := Complete(nil, nil)
	if len(c.Est) != 0 || c.Total != 0 {
		t.Error("empty marginals should give empty completion")
	}
	ev := Evaluate(c, map[Pair]float64{{1, 2}: 5})
	if ev.Cells != 1 || ev.MedianAPE != 1 {
		t.Errorf("missing estimate should be 100%% APE, got %+v", ev)
	}
}

func TestNoisyMarginalsDegradeGracefully(t *testing.T) {
	w := world.Build(world.Tiny(3))
	truth, rows, cols := truthPairs(w)
	exact := Evaluate(Complete(rows, cols), truth)
	// Perturb rows by ±30%: accuracy degrades but rank structure holds.
	noisy := map[topology.ASN]float64{}
	i := 0
	for asn, v := range rows {
		f := 0.7
		if i%2 == 0 {
			f = 1.3
		}
		noisy[asn] = v * f
		i++
	}
	approx := Evaluate(Complete(noisy, cols), truth)
	if approx.RankCorr < exact.RankCorr-0.2 {
		t.Errorf("rank corr collapsed under noise: %.2f vs %.2f", approx.RankCorr, exact.RankCorr)
	}
	if approx.WeightedMAPE < exact.WeightedMAPE {
		t.Error("noise should not improve accuracy")
	}
}
