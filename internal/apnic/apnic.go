// Package apnic produces APNIC-labs-style per-AS Internet user estimates:
// coarse (AS granularity, not prefix), noisy, and unvalidated — exactly how
// the paper treats the real APNIC data [33]. The estimates derive from the
// simulator's ground truth with multiplicative noise and coverage gaps, so
// experiments can both use them (Figures 1b and 2) and quantify how wrong
// they are.
package apnic

import (
	"sort"

	"itmap/internal/order"
	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/users"
)

// Estimates is a published APNIC-like dataset.
type Estimates struct {
	// ByAS is the estimated user count per AS. ASes below the coverage
	// threshold or unlucky in sampling are absent (no APNIC data).
	ByAS map[topology.ASN]float64
}

// Config tunes the estimator's error model.
type Config struct {
	// NoiseSigma is the lognormal sigma of the multiplicative error.
	NoiseSigma float64
	// MinUsers: ASes with fewer ground-truth users than this never make
	// it into the dataset (sample-size floor).
	MinUsers float64
	// DropProb is the chance a qualifying AS is still missing.
	DropProb float64
}

// DefaultConfig matches the coarse, mostly-right character the paper
// ascribes to APNIC's data.
func DefaultConfig() Config {
	return Config{NoiseSigma: 0.35, MinUsers: 5000, DropProb: 0.04}
}

// Estimate publishes a dataset for the world.
func Estimate(top *topology.Topology, um *users.Model, cfg Config, rng *randx.Source) *Estimates {
	e := &Estimates{ByAS: map[topology.ASN]float64{}}
	for _, asn := range top.ASNs() {
		truth := um.ASUsers(asn)
		if truth < cfg.MinUsers {
			continue
		}
		if rng.Bool(cfg.DropProb) {
			continue
		}
		e.ByAS[asn] = truth * rng.Lognormal(0, cfg.NoiseSigma)
	}
	return e
}

// Users returns the published estimate for an AS (0, false if not covered).
func (e *Estimates) Users(asn topology.ASN) (float64, bool) {
	u, ok := e.ByAS[asn]
	return u, ok
}

// CountryUsers aggregates estimates per country code.
func (e *Estimates) CountryUsers(top *topology.Topology) map[string]float64 {
	out := map[string]float64{}
	for _, asn := range order.Keys(e.ByAS) {
		a := top.ASes[asn]
		if a == nil || a.Country == "ZZ" {
			continue
		}
		out[a.Country] += e.ByAS[asn]
	}
	return out
}

// TotalUsers sums the published estimates.
func (e *Estimates) TotalUsers() float64 {
	return order.SumValues(e.ByAS)
}

// TopASes returns covered ASes by descending estimated users.
func (e *Estimates) TopASes() []topology.ASN {
	out := make([]topology.ASN, 0, len(e.ByAS))
	for asn := range e.ByAS {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool {
		if e.ByAS[out[i]] != e.ByAS[out[j]] {
			return e.ByAS[out[i]] > e.ByAS[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
