package apnic

import (
	"math"
	"testing"

	"itmap/internal/randx"
	"itmap/internal/topology"
	"itmap/internal/users"
)

func setup(t testing.TB) (*topology.Topology, *users.Model, *Estimates) {
	t.Helper()
	top := topology.Generate(topology.TinyGenConfig(1))
	um := users.Build(top, users.DefaultConfig(), randx.New(2))
	est := Estimate(top, um, DefaultConfig(), randx.New(3))
	return top, um, est
}

func TestEstimatesRoughlyRight(t *testing.T) {
	top, um, est := setup(t)
	if len(est.ByAS) == 0 {
		t.Fatal("empty estimates")
	}
	// Aggregate error is bounded: total within 35% of truth.
	truthTotal := 0.0
	for asn := range est.ByAS {
		truthTotal += um.ASUsers(asn)
	}
	ratio := est.TotalUsers() / truthTotal
	if ratio < 0.65 || ratio > 1.5 {
		t.Errorf("estimate/truth ratio %.2f", ratio)
	}
	// Every covered AS actually hosts users above the floor.
	for asn := range est.ByAS {
		if um.ASUsers(asn) < DefaultConfig().MinUsers {
			t.Errorf("AS %d below coverage floor is covered", asn)
		}
	}
	_ = top
}

func TestCoverageGaps(t *testing.T) {
	top, um, est := setup(t)
	// Some user-hosting ASes must be missing (coarse coverage).
	missing := 0
	for _, asn := range top.ASNs() {
		if um.ASUsers(asn) > 0 {
			if _, ok := est.Users(asn); !ok {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Error("APNIC-like data should have gaps")
	}
}

func TestCountryAggregation(t *testing.T) {
	top, _, est := setup(t)
	byC := est.CountryUsers(top)
	total := 0.0
	for code, v := range byC {
		if v <= 0 {
			t.Fatalf("country %s non-positive", code)
		}
		total += v
	}
	if math.Abs(total-est.TotalUsers()) > 1e-6*total {
		t.Errorf("country sum %f != total %f", total, est.TotalUsers())
	}
}

func TestTopASesSorted(t *testing.T) {
	_, _, est := setup(t)
	tops := est.TopASes()
	for i := 1; i < len(tops); i++ {
		if est.ByAS[tops[i]] > est.ByAS[tops[i-1]] {
			t.Fatal("TopASes not sorted")
		}
	}
}

func TestDeterministicGivenRng(t *testing.T) {
	top := topology.Generate(topology.TinyGenConfig(1))
	um := users.Build(top, users.DefaultConfig(), randx.New(2))
	a := Estimate(top, um, DefaultConfig(), randx.New(9))
	b := Estimate(top, um, DefaultConfig(), randx.New(9))
	if len(a.ByAS) != len(b.ByAS) {
		t.Fatal("same rng, different coverage")
	}
	for asn, v := range a.ByAS {
		if b.ByAS[asn] != v {
			t.Fatal("same rng, different values")
		}
	}
}
