// Package order provides deterministic iteration over Go maps. Map
// iteration order is randomized per run, so any fold, append, or write
// driven directly by `range m` produces run-dependent output; these
// helpers pin iteration to sorted key order so identical (config, seed)
// runs emit identical bytes. itm-lint's maporder and floatfold analyzers
// steer offending loops here.
package order

import (
	"cmp"
	"slices"
)

// Number covers the accumulator types the simulator folds over maps.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Keys returns the keys of m in ascending order.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// KeysFunc returns the keys of m sorted by compare (as in slices.SortFunc).
// Use it for struct keys that have no natural cmp.Ordered form.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, compare func(a, b K) int) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.SortFunc(ks, compare)
	return ks
}

// SumValues folds m's values in ascending key order. For float values this
// fixes the association order, so the low bits of the total are identical
// across runs — the property the byte-parity tests depend on.
func SumValues[M ~map[K]V, K cmp.Ordered, V Number](m M) V {
	var total V
	for _, k := range Keys(m) {
		total += m[k]
	}
	return total
}
