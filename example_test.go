package itm_test

import (
	"fmt"
	"os"

	itm "itmap"
)

// ExampleWeightedCDF shows the paper's central methodological point: the
// same samples give opposite answers depending on whether each path counts
// once or by the traffic it carries.
func ExampleWeightedCDF() {
	var unweighted, weighted itm.WeightedCDF
	// 98 long paths carrying a trickle, 2 short paths carrying a flood.
	for i := 0; i < 98; i++ {
		unweighted.Add(4, 1) // 4 AS hops, weight 1
		weighted.Add(4, 1)   // the trickle
	}
	for i := 0; i < 2; i++ {
		unweighted.Add(1, 1)
		weighted.Add(1, 500) // the flood
	}
	fmt.Printf("short paths, unweighted: %.0f%%\n", unweighted.FracAtMost(1)*100)
	fmt.Printf("short paths, weighted:   %.0f%%\n", weighted.FracAtMost(1)*100)
	// Output:
	// short paths, unweighted: 2%
	// short paths, weighted:   91%
}

// ExampleNewInternet builds a world and reports its deterministic shape.
func ExampleNewInternet() {
	inet := itm.NewInternet(itm.TinyConfig(1))
	fmt.Println("services in catalog:", len(inet.Cat.Services))
	fmt.Println("root letters:", len(inet.Roots.Letters))
	// Output:
	// services in catalog: 60
	// root letters: 13
}

// Example_buildAndValidate runs the full pipeline: build a simulated
// Internet, construct the traffic map from public measurements, and score
// it against ground truth.
func Example_buildAndValidate() {
	inet := itm.NewInternet(itm.TinyConfig(7))
	tmap := itm.BuildMap(inet)
	v := itm.ValidateMap(inet, tmap)
	if v.PrefixTrafficRecall > 0.8 && v.ASTrafficRecallCombined > 0.9 {
		fmt.Println("map validates against the reference CDN's logs")
	}
	// Output:
	// map validates against the reference CDN's logs
}

// Example_export publishes a map as JSON (ground truth never leaves the
// simulator; only measured estimates are exported).
func Example_export() {
	inet := itm.NewInternet(itm.TinyConfig(3))
	tmap := itm.BuildMap(inet)
	f, err := os.CreateTemp("", "itm-*.json")
	if err != nil {
		fmt.Println("temp:", err)
		return
	}
	defer os.Remove(f.Name())
	defer f.Close()
	if err := tmap.Export(f); err != nil {
		fmt.Println("export:", err)
		return
	}
	fmt.Println("exported ok")
	// Output:
	// exported ok
}
