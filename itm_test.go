package itm

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	inet := NewInternet(TinyConfig(1))
	m := BuildMap(inet)
	if len(m.Users.ASActivity) == 0 {
		t.Fatal("empty map")
	}
	v := ValidateMap(inet, m)
	if v.PrefixTrafficRecall < 0.8 {
		t.Errorf("recall %.2f too low", v.PrefixTrafficRecall)
	}
	// Outage use case runs through the facade.
	var target ASN
	best := 0.0
	for _, asn := range inet.Top.ASNs() {
		if u := inet.Users.ASUsers(asn); u > best {
			best, target = u, asn
		}
	}
	rep := m.OutageImpact(target)
	if rep.ActivityShare <= 0 {
		t.Error("no outage impact for largest AS")
	}
}

func TestFacadeSessionCaching(t *testing.T) {
	inet := NewInternet(TinyConfig(2))
	s := NewSession(inet)
	if s.Map() != s.Map() {
		t.Error("session does not cache the map")
	}
}

func TestFacadePeeringCandidates(t *testing.T) {
	inet := NewInternet(TinyConfig(3))
	cands := PeeringCandidates(inet, 10)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if len(cands) > 10 {
		t.Fatalf("limit ignored: %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("candidates unsorted")
		}
	}
}

func TestFacadeResultRendering(t *testing.T) {
	inet := NewInternet(TinyConfig(4))
	s := NewSession(inet)
	rs := []*Result{s.RunE1(), s.RunE9()}
	txt := FormatResults(rs)
	md := MarkdownResults(rs)
	if !strings.Contains(txt, "E1") || !strings.Contains(md, "### E9") {
		t.Error("rendering lost experiment ids")
	}
}

func TestWeightedCDFExported(t *testing.T) {
	var c WeightedCDF
	c.Add(1, 2)
	c.Add(3, 2)
	if got := c.Quantile(0.5); got != 1 {
		t.Errorf("median %f", got)
	}
}
